//! Workspace-level tests for the persistent prepared-index format
//! (`gup_graph::index_io`): round-trip fidelity on generated graphs, a
//! differential check that a loaded index answers queries identically to a
//! freshly built one across every engine family, and an exhaustive corruption
//! matrix (every truncation point, every single-byte flip) proving the loader
//! returns typed errors and never panics.

use gup::session::{Engine, Session};
use gup_graph::generate::{power_law_graph, random_walk_query, PowerLawConfig};
use gup_graph::index_io::{
    checksum, load_index_bytes, write_index_bytes, IndexIoError, FORMAT_VERSION, HEADER_BYTES,
};
use gup_graph::{fixtures, load_index, save_index, PreparedData};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

fn generated_graphs() -> Vec<gup_graph::Graph> {
    // Seed-pinned: the same configs on every run, spanning tiny through
    // mid-sized graphs with different label vocabularies and densities.
    let mut graphs = vec![fixtures::paper_example().1];
    for (seed, vertices, labels, epv) in [
        (7, 50, 3, 2),
        (11, 400, 8, 3),
        (13, 2_000, 20, 4),
        (17, 5_000, 1, 2),
    ] {
        graphs.push(power_law_graph(&PowerLawConfig {
            vertices,
            edges_per_vertex: epv,
            labels,
            seed,
            ..PowerLawConfig::default()
        }));
    }
    graphs
}

/// `load(save(p)) == p` for seed-pinned random graphs (equality covers the
/// graph, the signature arena, and the derived bounds; `prep_time` is
/// excluded by `PreparedData`'s `PartialEq` by design).
#[test]
fn round_trip_preserves_every_prepared_index() {
    for (i, graph) in generated_graphs().into_iter().enumerate() {
        let prepared = PreparedData::new(graph);
        let bytes = write_index_bytes(&prepared);
        let loaded = load_index_bytes(&bytes).unwrap_or_else(|e| panic!("graph #{i}: {e}"));
        assert_eq!(loaded, prepared, "graph #{i}: round trip changed the index");
        // Serialization is deterministic: re-encoding the loaded copy is
        // byte-identical, so on-disk artifacts are diffable.
        assert_eq!(write_index_bytes(&loaded), bytes, "graph #{i}");
    }
}

/// Through the file-path API as the CLI uses it, including overwrite.
#[test]
fn save_and_load_round_trip_through_a_file() {
    let dir = std::env::temp_dir().join(format!("gup_index_io_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fixture.gupi");
    let prepared = PreparedData::new(fixtures::paper_example().1);
    save_index(&prepared, &path).unwrap();
    assert_eq!(load_index(&path).unwrap(), prepared);
    // Saving again overwrites in place rather than appending.
    save_index(&prepared, &path).unwrap();
    assert_eq!(load_index(&path).unwrap(), prepared);
    let missing = load_index(dir.join("does_not_exist.gupi"));
    assert!(matches!(missing, Err(IndexIoError::Io(_))), "{missing:?}");
    std::fs::remove_dir_all(&dir).ok();
}

/// The acceptance differential: a loaded index must answer every fixture query
/// identically to the freshly built index, for every engine family.
#[test]
fn loaded_index_answers_queries_identically_to_a_fresh_one() {
    let mut rng = SmallRng::seed_from_u64(99);
    for graph in generated_graphs() {
        let mut queries = vec![fixtures::paper_example().0];
        for size in [3, 4, 5] {
            if let Some(q) = random_walk_query(&graph, size, &mut rng) {
                queries.push(q);
            }
        }
        let fresh = PreparedData::new(graph);
        let loaded = load_index_bytes(&write_index_bytes(&fresh)).unwrap();
        let cold = Session::from_prepared(Arc::new(fresh));
        let warm = Session::from_prepared(Arc::new(loaded));
        for (qi, query) in queries.iter().enumerate() {
            for engine in Engine::ALL {
                // A shared cap keeps dense single-label configs tractable;
                // cold and warm run the same deterministic engine, so equal
                // capped counts still prove behavioral equivalence.
                let a = cold.query(query).method(engine).limit(20_000).count();
                let b = warm.query(query).method(engine).limit(20_000).count();
                match (a, b) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a, b, "query #{qi}, {engine:?}: cold {a} != warm {b}")
                    }
                    // Engines reject some queries (e.g. too many vertices);
                    // cold and warm must at least agree on rejection.
                    (Err(_), Err(_)) => {}
                    (a, b) => panic!("query #{qi}, {engine:?}: cold {a:?} vs warm {b:?}"),
                }
            }
        }
    }
}

/// Every possible truncation point yields a typed error, never a panic and
/// never a silent success.
#[test]
fn every_truncation_is_a_typed_error() {
    let prepared = PreparedData::new(fixtures::paper_example().1);
    let bytes = write_index_bytes(&prepared);
    for len in 0..bytes.len() {
        let result = load_index_bytes(&bytes[..len]);
        assert!(result.is_err(), "truncation to {len} bytes decoded as Ok");
    }
    assert!(load_index_bytes(&bytes).is_ok());
}

/// Every single-byte flip is caught: header flips by the magic/version checks,
/// stored-checksum flips and payload flips by the whole-file checksum.
#[test]
fn every_single_byte_flip_is_a_typed_error() {
    let prepared = PreparedData::new(fixtures::paper_example().1);
    let bytes = write_index_bytes(&prepared);
    for pos in 0..bytes.len() {
        for flip in [0x01u8, 0x80] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= flip;
            let result = load_index_bytes(&corrupt);
            assert!(
                result.is_err(),
                "flip {flip:#04x} at byte {pos} was accepted"
            );
            let expected_kind = match pos {
                0..=3 => matches!(result, Err(IndexIoError::BadMagic { .. })),
                4..=7 => matches!(result, Err(IndexIoError::UnsupportedVersion { .. })),
                _ => matches!(result, Err(IndexIoError::ChecksumMismatch { .. })),
            };
            assert!(expected_kind, "byte {pos}: unexpected error {result:?}");
        }
    }
}

/// Reseals the checksum over a tampered payload so the corruption reaches the
/// structural validators instead of the checksum gate.
fn reseal(bytes: &mut [u8]) {
    let sum = checksum(&bytes[HEADER_BYTES..]).to_le_bytes();
    bytes[8..16].copy_from_slice(&sum);
}

/// A length prefix pointing past the end of the file is a `SectionOverrun`
/// (detected before any allocation), even when the checksum is valid.
#[test]
fn resealed_section_overrun_is_rejected() {
    let prepared = PreparedData::new(fixtures::paper_example().1);
    let bytes = write_index_bytes(&prepared);
    // The first section length prefix (vertex offsets) sits right after the
    // three u64 counts that follow the 16-byte header.
    let first_len_prefix = HEADER_BYTES + 3 * 8;
    let mut corrupt = bytes.clone();
    corrupt[first_len_prefix..first_len_prefix + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    reseal(&mut corrupt);
    let result = load_index_bytes(&corrupt);
    assert!(
        matches!(result, Err(IndexIoError::SectionOverrun { .. })),
        "{result:?}"
    );
}

/// A resealed header with an unknown version is rejected as such (the format
/// has no migration path: re-prepare from the text graph instead).
#[test]
fn resealed_future_version_is_rejected() {
    let prepared = PreparedData::new(fixtures::paper_example().1);
    let mut bytes = write_index_bytes(&prepared);
    bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
    reseal(&mut bytes);
    let result = load_index_bytes(&bytes);
    assert!(
        matches!(
            result,
            Err(IndexIoError::UnsupportedVersion { found, supported })
                if found == FORMAT_VERSION + 1 && supported == FORMAT_VERSION
        ),
        "{result:?}"
    );
}

/// Structurally invalid but checksum-valid payloads (a hand-crafted file) are
/// caught by the validators with `Invalid`, not by a panic downstream.
#[test]
fn resealed_structural_corruption_is_rejected() {
    let prepared = PreparedData::new(fixtures::paper_example().1);
    let bytes = write_index_bytes(&prepared);
    // Overwrite the first neighbor list entry with an out-of-range vertex id.
    // Layout: header, 3×u64 counts, offsets section (len prefix + (n+1)×u64),
    // neighbors section (len prefix + m×u32).
    let n = prepared.graph().vertex_count();
    let neighbors_first = HEADER_BYTES + 3 * 8 + 8 + (n + 1) * 8 + 8;
    let mut corrupt = bytes.clone();
    corrupt[neighbors_first..neighbors_first + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    reseal(&mut corrupt);
    let result = load_index_bytes(&corrupt);
    assert!(
        matches!(result, Err(IndexIoError::Invalid { .. })),
        "{result:?}"
    );
}

/// Trailing garbage after a well-formed payload is rejected even when the
/// checksum is recomputed over the longer payload.
#[test]
fn resealed_trailing_bytes_are_rejected() {
    let prepared = PreparedData::new(fixtures::paper_example().1);
    let mut bytes = write_index_bytes(&prepared);
    bytes.extend_from_slice(&[0u8; 4]);
    reseal(&mut bytes);
    let result = load_index_bytes(&bytes);
    assert!(result.is_err(), "{result:?}");
}
