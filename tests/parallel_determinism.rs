//! Determinism suite for the work-stealing parallel driver.
//!
//! Work stealing makes the *schedule* nondeterministic, so these tests pin what must
//! stay deterministic regardless of interleaving: the reported embedding count is
//! bit-identical to the sequential engine for `threads ∈ {1, 2, 4, 8}` on every
//! golden fixture, with and without an embedding limit, and on a seed-pinned
//! Yeast-analogue workload. The sink-mode cases pin the same property through the
//! streaming output layer: counting sinks agree with the sequential count, and
//! `FirstK` delivers *exactly* `min(k, total)` valid embeddings under every thread
//! count. Each configuration is run several times so that racy schedules get a
//! chance to disagree.

use gup::sink::{CountOnly, FirstK};
use gup::{GupConfig, GupMatcher, SearchLimits};
use gup_graph::fixtures::{clique4, paper_example, path, square_with_diagonal, triangle_query};
use gup_graph::query::{QueryGraph, QueryGraphError};
use gup_graph::{Graph, GraphBuilder};
use gup_workloads::{generate_query_set, Dataset, QueryClass, QuerySetSpec};

mod common;
use common::assert_valid_embedding;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REPEATS: usize = 3;

fn fixtures() -> Vec<(&'static str, Graph, Graph)> {
    let (paper_query, paper_data) = paper_example();
    vec![
        ("paper_example", paper_query, paper_data.clone()),
        (
            "triangle_in_square",
            triangle_query(),
            square_with_diagonal(),
        ),
        ("triangle_in_paper_data", triangle_query(), paper_data),
        ("clique4_in_clique4", clique4(2), clique4(2)),
        ("path2_on_diagonal", path(2, 0), square_with_diagonal()),
        ("path3_no_match", path(3, 1), square_with_diagonal()),
    ]
}

fn count(query: &Graph, data: &Graph, limits: SearchLimits, threads: usize) -> u64 {
    let cfg = GupConfig {
        limits,
        ..GupConfig::default()
    };
    let matcher = GupMatcher::<1>::new(query, data, cfg).unwrap();
    if threads == 1 {
        matcher.run().embedding_count()
    } else {
        matcher.run_parallel(threads).embedding_count()
    }
}

#[test]
fn thread_counts_agree_on_every_fixture_unlimited() {
    for (name, query, data) in fixtures() {
        let sequential = count(&query, &data, SearchLimits::UNLIMITED, 1);
        for threads in THREAD_COUNTS {
            for round in 0..REPEATS {
                let parallel = count(&query, &data, SearchLimits::UNLIMITED, threads);
                assert_eq!(
                    parallel, sequential,
                    "{name}: threads={threads} round={round} disagrees with sequential"
                );
            }
        }
    }
}

#[test]
fn thread_counts_agree_under_embedding_limits() {
    for (name, query, data) in fixtures() {
        let unlimited = count(&query, &data, SearchLimits::UNLIMITED, 1);
        // A limit below, at, and above the true count; the reserve-based shared
        // counter must make every schedule report exactly min(limit, unlimited).
        for limit in [1u64, 2, unlimited.max(1), unlimited + 10] {
            let limits = SearchLimits {
                max_embeddings: Some(limit),
                ..SearchLimits::UNLIMITED
            };
            let sequential = count(&query, &data, limits, 1);
            assert_eq!(sequential, unlimited.min(limit), "{name}: bad seq clamp");
            for threads in THREAD_COUNTS {
                for round in 0..REPEATS {
                    let parallel = count(&query, &data, limits, threads);
                    assert_eq!(
                        parallel, sequential,
                        "{name}: limit={limit} threads={threads} round={round}"
                    );
                }
            }
        }
    }
}

/// Seed-pinned stress test on the Yeast analogue: bigger instances where stealing
/// and frame splitting actually occur.
#[test]
fn yeast_analogue_stress_is_schedule_independent() {
    let data = Dataset::Yeast.generate(0.10).graph;
    let mut queries = Vec::new();
    for (vertices, class) in [
        (8, QueryClass::Sparse),
        (8, QueryClass::Dense),
        (16, QueryClass::Sparse),
    ] {
        queries.extend(generate_query_set(
            &data,
            QuerySetSpec { vertices, class },
            2,
            0xC0FFEE,
        ));
    }
    assert!(
        !queries.is_empty(),
        "workload generator produced no queries"
    );
    let mut total_tasks = 0u64;
    for (qi, query) in queries.iter().enumerate() {
        let sequential = count(query, &data, SearchLimits::UNLIMITED, 1);
        for threads in [2usize, 4, 8] {
            let cfg = GupConfig {
                limits: SearchLimits::UNLIMITED,
                ..GupConfig::default()
            };
            let result = GupMatcher::<1>::new(query, &data, cfg)
                .unwrap()
                .run_parallel(threads);
            assert_eq!(
                result.embedding_count(),
                sequential,
                "query {qi}: threads={threads} disagrees with sequential"
            );
            total_tasks += result.stats.tasks_executed;
        }
        // Limited runs must clamp identically too.
        let limits = SearchLimits {
            max_embeddings: Some(sequential / 2 + 1),
            ..SearchLimits::UNLIMITED
        };
        let seq_limited = count(query, &data, limits, 1);
        for threads in [2usize, 4, 8] {
            assert_eq!(
                count(query, &data, limits, threads),
                seq_limited,
                "query {qi}: limited threads={threads}"
            );
        }
    }
    // The work-stealing driver really ran tasks (seeded chunks at minimum).
    assert!(total_tasks > 0);
}

/// Counting sinks must observe exactly the sequential count under every thread
/// count and schedule — the streamed count is the same number the stats report.
#[test]
fn counting_sinks_agree_across_thread_counts() {
    for (name, query, data) in fixtures() {
        let sequential = count(&query, &data, SearchLimits::UNLIMITED, 1);
        for threads in THREAD_COUNTS {
            for round in 0..REPEATS {
                let cfg = GupConfig {
                    limits: SearchLimits::UNLIMITED,
                    ..GupConfig::default()
                };
                let matcher = GupMatcher::<1>::new(&query, &data, cfg).unwrap();
                let mut sink = CountOnly::new();
                let stats = matcher.run_parallel_with_sink(threads, &mut sink);
                assert_eq!(
                    sink.count(),
                    sequential,
                    "{name}: counting sink threads={threads} round={round}"
                );
                assert_eq!(
                    stats.embeddings, sequential,
                    "{name}: stats drifted from the sink count"
                );
            }
        }
    }
}

/// `FirstK` must deliver exactly `min(k, total)` embeddings — never more, never
/// fewer — regardless of the thread count and interleaving, and each delivered
/// embedding must be a valid injective label/adjacency-preserving map. Which
/// embeddings are delivered is schedule-dependent under truncation; the count and
/// validity are not.
#[test]
fn first_k_is_exact_under_every_thread_count() {
    for (name, query, data) in fixtures() {
        let total = count(&query, &data, SearchLimits::UNLIMITED, 1);
        for k in [1u64, 2, total.max(1), total + 5] {
            for threads in THREAD_COUNTS {
                for round in 0..REPEATS {
                    let cfg = GupConfig {
                        limits: SearchLimits::UNLIMITED,
                        ..GupConfig::default()
                    };
                    let matcher = GupMatcher::<1>::new(&query, &data, cfg).unwrap();
                    let mut sink = FirstK::new(k);
                    let stats = matcher.run_parallel_with_sink(threads, &mut sink);
                    let expected = k.min(total);
                    assert_eq!(
                        sink.embeddings().len() as u64,
                        expected,
                        "{name}: FirstK({k}) threads={threads} round={round}"
                    );
                    assert_eq!(
                        stats.embeddings, expected,
                        "{name}: FirstK({k}) stats threads={threads} round={round}"
                    );
                    // Flag consistency across thread counts: truncation by a sink's
                    // capacity is a sink stop, never a (nonexistent) embedding
                    // limit — sequential and parallel must agree.
                    assert!(
                        !stats.hit_embedding_limit,
                        "{name}: FirstK({k}) threads={threads} blamed the embedding limit"
                    );
                    // (At k == total the k-th report still fills the sink, which
                    // answers Stop — so the flag is set exactly when k <= total.)
                    assert_eq!(
                        stats.stopped_by_sink,
                        k <= total && total > 0,
                        "{name}: FirstK({k}) threads={threads} stopped_by_sink flag"
                    );
                    for emb in sink.embeddings() {
                        assert_valid_embedding(name, &query, &data, emb);
                    }
                }
            }
        }
    }
}

/// When a `FirstK` capacity coincides with the configured embedding limit, the
/// termination flags must still be identical on every thread count: truncation is
/// attributed to the sink (whose Stop every schedule observes), never left as a
/// schedule-dependent `hit_embedding_limit`.
#[test]
fn capacity_equal_to_limit_attributes_to_the_sink_on_every_thread_count() {
    let (query, data) = paper_example(); // 4 embeddings
    for threads in THREAD_COUNTS {
        for round in 0..REPEATS {
            let cfg = GupConfig {
                limits: SearchLimits {
                    max_embeddings: Some(2),
                    ..SearchLimits::UNLIMITED
                },
                ..GupConfig::default()
            };
            let matcher = GupMatcher::<1>::new(&query, &data, cfg).unwrap();
            let mut sink = FirstK::new(2);
            let stats = matcher.run_parallel_with_sink(threads, &mut sink);
            assert_eq!(
                sink.embeddings().len(),
                2,
                "threads={threads} round={round}"
            );
            assert!(
                stats.stopped_by_sink,
                "threads={threads} round={round}: missing sink-stop flag"
            );
            assert!(
                !stats.hit_embedding_limit,
                "threads={threads} round={round}: blamed the embedding limit"
            );
        }
    }
}

/// Sink-mode stress on the Yeast analogue: larger instances where frame splitting
/// and stealing actually occur, `FirstK` still exact.
#[test]
fn first_k_is_exact_on_yeast_analogue_stress() {
    let data = Dataset::Yeast.generate(0.10).graph;
    let queries = generate_query_set(
        &data,
        QuerySetSpec {
            vertices: 8,
            class: QueryClass::Sparse,
        },
        2,
        0xF1257,
    );
    assert!(
        !queries.is_empty(),
        "workload generator produced no queries"
    );
    for (qi, query) in queries.iter().enumerate() {
        let total = count(query, &data, SearchLimits::UNLIMITED, 1);
        let k = total / 2 + 1;
        for threads in [2usize, 4, 8] {
            let cfg = GupConfig {
                limits: SearchLimits::UNLIMITED,
                ..GupConfig::default()
            };
            let matcher = GupMatcher::<1>::new(query, &data, cfg).unwrap();
            let mut sink = FirstK::new(k);
            matcher.run_parallel_with_sink(threads, &mut sink);
            assert_eq!(
                sink.embeddings().len() as u64,
                k.min(total),
                "query {qi}: FirstK({k}) threads={threads}"
            );
        }
    }
}

/// Release-mode regression: a query exceeding a bitset bound must be rejected with
/// a typed error from every entry point — never reach the bitmask arithmetic where
/// a wrapped shift could silently corrupt masks with `--release`. Since the engine
/// went width-generic, a 65-vertex query is *accepted* globally (it dispatches to a
/// two-word bitset) but still rejected by an explicitly width-1 instantiation; the
/// global ceiling moved to 256 vertices.
#[test]
fn oversized_query_is_a_typed_error_in_every_profile() {
    let mut b = GraphBuilder::new();
    b.add_vertices(65, 0);
    for i in 0..64u32 {
        b.add_edge(i, i + 1);
    }
    let beyond_one_word = b.build();

    // 65 vertices: fine globally, a typed error for the one-word engine.
    assert!(QueryGraph::new(beyond_one_word.clone()).is_ok());
    let (_q, data) = paper_example();
    let Err(err) = GupMatcher::<1>::new(&beyond_one_word, &data, GupConfig::default()) else {
        panic!("65-vertex query must be rejected by an explicitly one-word matcher");
    };
    assert!(format!("{err}").contains("at most 64"));

    // 257 vertices: beyond the widest supported bitset, rejected everywhere.
    let mut b = GraphBuilder::new();
    b.add_vertices(257, 0);
    for i in 0..256u32 {
        b.add_edge(i, i + 1);
    }
    let oversized = b.build();
    let err = QueryGraph::new(oversized.clone()).unwrap_err();
    assert!(matches!(
        err,
        QueryGraphError::TooLarge {
            vertices: 257,
            limit: 256
        }
    ));
    let Err(err) = GupMatcher::<4>::new(&oversized, &data, GupConfig::default()) else {
        panic!("257-vertex query must be rejected by the widest matcher too");
    };
    assert!(format!("{err}").contains("at most 256"));
}
