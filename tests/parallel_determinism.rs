//! Determinism suite for the work-stealing parallel driver.
//!
//! Work stealing makes the *schedule* nondeterministic, so these tests pin what must
//! stay deterministic regardless of interleaving: the reported embedding count is
//! bit-identical to the sequential engine for `threads ∈ {1, 2, 4, 8}` on every
//! golden fixture, with and without an embedding limit, and on a seed-pinned
//! Yeast-analogue workload. Each configuration is run several times so that racy
//! schedules get a chance to disagree.

use gup::{GupConfig, GupMatcher, SearchLimits};
use gup_graph::fixtures::{clique4, paper_example, path, square_with_diagonal, triangle_query};
use gup_graph::query::{QueryGraph, QueryGraphError};
use gup_graph::{Graph, GraphBuilder};
use gup_workloads::{generate_query_set, Dataset, QueryClass, QuerySetSpec};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REPEATS: usize = 3;

fn fixtures() -> Vec<(&'static str, Graph, Graph)> {
    let (paper_query, paper_data) = paper_example();
    vec![
        ("paper_example", paper_query, paper_data.clone()),
        (
            "triangle_in_square",
            triangle_query(),
            square_with_diagonal(),
        ),
        ("triangle_in_paper_data", triangle_query(), paper_data),
        ("clique4_in_clique4", clique4(2), clique4(2)),
        ("path2_on_diagonal", path(2, 0), square_with_diagonal()),
        ("path3_no_match", path(3, 1), square_with_diagonal()),
    ]
}

fn count(query: &Graph, data: &Graph, limits: SearchLimits, threads: usize) -> u64 {
    let cfg = GupConfig {
        limits,
        ..GupConfig::default()
    };
    let matcher = GupMatcher::new(query, data, cfg).unwrap();
    if threads == 1 {
        matcher.run().embedding_count()
    } else {
        matcher.run_parallel(threads).embedding_count()
    }
}

#[test]
fn thread_counts_agree_on_every_fixture_unlimited() {
    for (name, query, data) in fixtures() {
        let sequential = count(&query, &data, SearchLimits::UNLIMITED, 1);
        for threads in THREAD_COUNTS {
            for round in 0..REPEATS {
                let parallel = count(&query, &data, SearchLimits::UNLIMITED, threads);
                assert_eq!(
                    parallel, sequential,
                    "{name}: threads={threads} round={round} disagrees with sequential"
                );
            }
        }
    }
}

#[test]
fn thread_counts_agree_under_embedding_limits() {
    for (name, query, data) in fixtures() {
        let unlimited = count(&query, &data, SearchLimits::UNLIMITED, 1);
        // A limit below, at, and above the true count; the reserve-based shared
        // counter must make every schedule report exactly min(limit, unlimited).
        for limit in [1u64, 2, unlimited.max(1), unlimited + 10] {
            let limits = SearchLimits {
                max_embeddings: Some(limit),
                ..SearchLimits::UNLIMITED
            };
            let sequential = count(&query, &data, limits, 1);
            assert_eq!(sequential, unlimited.min(limit), "{name}: bad seq clamp");
            for threads in THREAD_COUNTS {
                for round in 0..REPEATS {
                    let parallel = count(&query, &data, limits, threads);
                    assert_eq!(
                        parallel, sequential,
                        "{name}: limit={limit} threads={threads} round={round}"
                    );
                }
            }
        }
    }
}

/// Seed-pinned stress test on the Yeast analogue: bigger instances where stealing
/// and frame splitting actually occur.
#[test]
fn yeast_analogue_stress_is_schedule_independent() {
    let data = Dataset::Yeast.generate(0.10).graph;
    let mut queries = Vec::new();
    for (vertices, class) in [
        (8, QueryClass::Sparse),
        (8, QueryClass::Dense),
        (16, QueryClass::Sparse),
    ] {
        queries.extend(generate_query_set(
            &data,
            QuerySetSpec { vertices, class },
            2,
            0xC0FFEE,
        ));
    }
    assert!(
        !queries.is_empty(),
        "workload generator produced no queries"
    );
    let mut total_tasks = 0u64;
    for (qi, query) in queries.iter().enumerate() {
        let sequential = count(query, &data, SearchLimits::UNLIMITED, 1);
        for threads in [2usize, 4, 8] {
            let cfg = GupConfig {
                limits: SearchLimits::UNLIMITED,
                ..GupConfig::default()
            };
            let result = GupMatcher::new(query, &data, cfg)
                .unwrap()
                .run_parallel(threads);
            assert_eq!(
                result.embedding_count(),
                sequential,
                "query {qi}: threads={threads} disagrees with sequential"
            );
            total_tasks += result.stats.tasks_executed;
        }
        // Limited runs must clamp identically too.
        let limits = SearchLimits {
            max_embeddings: Some(sequential / 2 + 1),
            ..SearchLimits::UNLIMITED
        };
        let seq_limited = count(query, &data, limits, 1);
        for threads in [2usize, 4, 8] {
            assert_eq!(
                count(query, &data, limits, threads),
                seq_limited,
                "query {qi}: limited threads={threads}"
            );
        }
    }
    // The work-stealing driver really ran tasks (seeded chunks at minimum).
    assert!(total_tasks > 0);
}

/// Release-mode regression: a query exceeding the 64-vertex bitset bound must be
/// rejected with a typed error from every entry point — never reach the bitmask
/// arithmetic where a wrapped shift could silently corrupt masks with `--release`.
#[test]
fn oversized_query_is_a_typed_error_in_every_profile() {
    let mut b = GraphBuilder::new();
    b.add_vertices(65, 0);
    for i in 0..64u32 {
        b.add_edge(i, i + 1);
    }
    let oversized = b.build();

    let err = QueryGraph::new(oversized.clone()).unwrap_err();
    assert!(matches!(err, QueryGraphError::TooLarge { vertices: 65 }));
    assert!(format!("{err}").contains("65"));

    let (_q, data) = paper_example();
    let Err(err) = GupMatcher::new(&oversized, &data, GupConfig::default()) else {
        panic!("oversized query must be rejected by the matcher front door");
    };
    assert!(format!("{err}").contains("at most 64"));
}
