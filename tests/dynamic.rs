//! Dynamic-graph correctness: incremental [`PreparedData::apply`] vs cold rebuild.
//!
//! Two pillars:
//!
//! * **Validation matrix** — duplicate edge inserts, deletes of absent edges,
//!   self-loops, and out-of-range endpoints each return their typed
//!   [`DeltaError`] variant naming the offending delta, and leave the index
//!   bit-identical (checked with `PreparedData`'s `PartialEq`, which compares
//!   every array of the index except the prep timestamp).
//! * **Rebuild equality** — after any applied batch, the incrementally
//!   maintained index is `==` to preparing the mutated graph from scratch:
//!   same CSR arrays, same label inverted index, same signature arena, same
//!   max-NLF/degree bounds. Probed on fixtures with scripted batches and on
//!   seed-pinned random delta streams (inserts, deletes, vertex adds) over
//!   generated graphs.

use gup_graph::builder::graph_from_edges;
use gup_graph::delta::{DeltaError, GraphDelta};
use gup_graph::fixtures;
use gup_graph::generate::{erdos_renyi_graph, ErdosRenyiConfig};
use gup_graph::PreparedData;
use rand::rngs::SmallRng;
use rand::SeedableRng;

mod common;
use common::random_delta;

/// Cold-rebuilds the prepared index from the graph it currently describes.
fn rebuilt(prepared: &PreparedData) -> PreparedData {
    let g = prepared.graph();
    let edges: Vec<_> = g.edges().collect();
    PreparedData::new(graph_from_edges(g.labels(), &edges))
}

#[test]
fn validation_matrix_types_errors_and_mutates_nothing() {
    let (_q, data) = fixtures::paper_example();
    let base = PreparedData::new(data);
    let snapshot = base.clone();
    let n = base.graph().vertex_count() as u32;
    let existing = base.graph().edges().next().expect("fixture has edges");
    let cases: Vec<(Vec<GraphDelta>, DeltaError)> = vec![
        // Duplicate insert of an existing edge.
        (
            vec![GraphDelta::AddEdge {
                a: existing.1,
                b: existing.0,
            }],
            DeltaError::DuplicateEdge {
                a: existing.0,
                b: existing.1,
                index: 0,
            },
        ),
        // Duplicate insert within the batch itself.
        (
            vec![
                GraphDelta::AddVertex { label: 0 },
                GraphDelta::AddEdge { a: 0, b: n },
                GraphDelta::AddEdge { a: n, b: 0 },
            ],
            DeltaError::DuplicateEdge {
                a: 0,
                b: n,
                index: 2,
            },
        ),
        // Delete of an edge that does not exist.
        (
            vec![GraphDelta::RemoveEdge { a: 0, b: n - 1 }],
            DeltaError::MissingEdge {
                a: 0,
                b: n - 1,
                index: 0,
            },
        ),
        // Delete of an edge the same batch already deleted.
        (
            vec![
                GraphDelta::RemoveEdge {
                    a: existing.0,
                    b: existing.1,
                },
                GraphDelta::RemoveEdge {
                    a: existing.0,
                    b: existing.1,
                },
            ],
            DeltaError::MissingEdge {
                a: existing.0,
                b: existing.1,
                index: 1,
            },
        ),
        // Self loops, inserted or deleted.
        (
            vec![GraphDelta::AddEdge { a: 3, b: 3 }],
            DeltaError::SelfLoop {
                vertex: 3,
                index: 0,
            },
        ),
        (
            vec![GraphDelta::RemoveEdge { a: 3, b: 3 }],
            DeltaError::SelfLoop {
                vertex: 3,
                index: 0,
            },
        ),
        // Out-of-range endpoints — including "valid only later in the batch".
        (
            vec![GraphDelta::AddEdge { a: 0, b: n }],
            DeltaError::UnknownVertex {
                vertex: n,
                vertex_count: n as usize,
                index: 0,
            },
        ),
        (
            vec![
                GraphDelta::AddEdge { a: 0, b: n },
                GraphDelta::AddVertex { label: 0 },
            ],
            DeltaError::UnknownVertex {
                vertex: n,
                vertex_count: n as usize,
                index: 0,
            },
        ),
        (
            vec![GraphDelta::RemoveEdge { a: u32::MAX, b: 0 }],
            DeltaError::UnknownVertex {
                vertex: u32::MAX,
                vertex_count: n as usize,
                index: 0,
            },
        ),
    ];
    for (deltas, expected) in cases {
        let err = base.apply(&deltas).expect_err("batch must be rejected");
        assert_eq!(err, expected, "deltas {deltas:?}");
        // Nothing applied, nothing mutated: the index is bit-identical.
        assert_eq!(base, snapshot, "deltas {deltas:?} mutated the index");
    }
}

#[test]
fn error_display_names_the_delta() {
    let base = PreparedData::new(graph_from_edges(&[0, 1], &[(0, 1)]));
    let err = base
        .apply(&[
            GraphDelta::AddVertex { label: 2 },
            GraphDelta::AddEdge { a: 0, b: 9 },
        ])
        .expect_err("unknown vertex");
    let msg = format!("{err}");
    assert!(msg.contains("delta 1") && msg.contains('9'), "{msg}");
}

#[test]
fn scripted_fixture_batches_equal_cold_rebuild() {
    let (_q, data) = fixtures::paper_example();
    let base = PreparedData::new(data);
    let n = base.graph().vertex_count() as u32;
    // A batch exercising every delta kind at once, including an edge to a
    // vertex created earlier in the same batch.
    let (next, effects) = base
        .apply_with_effects(&[
            GraphDelta::AddVertex { label: 2 },
            GraphDelta::AddVertex { label: 5 },
            GraphDelta::AddEdge { a: n, b: n + 1 },
            GraphDelta::AddEdge { a: 0, b: n },
            GraphDelta::RemoveEdge { a: 0, b: 1 },
            GraphDelta::AddEdge { a: 0, b: 1 },
            GraphDelta::RemoveEdge { a: 0, b: 2 },
        ])
        .expect("valid batch");
    assert_eq!(next, rebuilt(&next));
    // Label 5 extends the label universe: the inverted index and max-NLF
    // tables grew consistently (covered by the equality, spot-check anyway).
    assert_eq!(next.graph().label(n + 1), 5);
    assert_eq!(effects.added_vertices, 2);
    assert_eq!(effects.inserted_edges, vec![(0, n), (n, n + 1)]);
    assert_eq!(effects.removed_edges, vec![(0, 2)]);
    // Chaining batches stays exact.
    let again = next
        .apply(&[
            GraphDelta::RemoveEdge { a: n, b: n + 1 },
            GraphDelta::AddEdge { a: 1, b: n + 1 },
        ])
        .expect("valid batch");
    assert_eq!(again, rebuilt(&again));
}

#[test]
fn random_streams_stay_equal_to_cold_rebuild() {
    // Seed-pinned random streams over generated graphs: apply N deltas in
    // small batches; after every batch the incremental index must equal a
    // from-scratch prepare of the same graph.
    for seed in [7u64, 41, 1234] {
        let mut rng = SmallRng::seed_from_u64(seed);
        let data = erdos_renyi_graph(&ErdosRenyiConfig {
            vertices: 48,
            edge_probability: 0.12,
            labels: 4,
            seed,
        });
        let mut prepared = PreparedData::new(data);
        let mut applied = 0usize;
        while applied < 120 {
            let batch: Vec<GraphDelta> = (0..3)
                .map(|_| random_delta(prepared.graph(), 4, &mut rng))
                .collect();
            // Single-delta validity does not compose (a later delta may clash
            // with an earlier one in the batch); skip the rare invalid draw.
            let Ok(next) = prepared.apply(&batch) else {
                continue;
            };
            applied += batch.len();
            prepared = next;
            assert_eq!(
                prepared,
                rebuilt(&prepared),
                "seed {seed}: divergence after {applied} deltas"
            );
        }
    }
}
