//! End-to-end pipeline integration: workloads → candidate space → GCS → search, plus
//! text I/O round trips feeding the matcher. These tests exercise the crates together
//! the way the benchmark harness and the examples do.

use gup::{GupConfig, GupMatcher, SearchLimits};
use gup_candidate::{CandidateSpace, FilterConfig};
use gup_graph::io::{graph_to_string, parse_graph};
use gup_workloads::{generate_query_set, Dataset, QueryClass, QuerySetSpec};
use std::time::Duration;

fn limits() -> SearchLimits {
    SearchLimits {
        max_embeddings: Some(50_000),
        time_limit: Some(Duration::from_secs(2)),
        ..SearchLimits::UNLIMITED
    }
}

#[test]
fn yeast_analogue_query_sets_run_under_gup() {
    let data = Dataset::Yeast.generate(0.08).graph;
    let mut ran = 0;
    for spec in [
        QuerySetSpec {
            vertices: 8,
            class: QueryClass::Sparse,
        },
        QuerySetSpec {
            vertices: 8,
            class: QueryClass::Dense,
        },
        QuerySetSpec {
            vertices: 16,
            class: QueryClass::Sparse,
        },
    ] {
        let queries = generate_query_set(&data, spec, 3, 21);
        for q in &queries {
            let cfg = GupConfig {
                limits: limits(),
                ..GupConfig::default()
            };
            let matcher = GupMatcher::<1>::new(q, &data, cfg).expect("generated queries are valid");
            let result = matcher.run();
            // The query was extracted from the data graph, so at least one embedding
            // must exist (the extraction site itself) unless the search was cut short.
            assert!(
                result.embedding_count() >= 1 || result.stats.terminated_early(),
                "query extracted from the data graph must match at least once"
            );
            ran += 1;
        }
    }
    assert!(
        ran >= 3,
        "expected to run at least a few generated queries, ran {ran}"
    );
}

#[test]
fn candidate_space_contains_every_embedding() {
    // Soundness of the filtering substrate: every brute-force embedding must be fully
    // contained in the candidate sets.
    let data = Dataset::Yeast.generate(0.05).graph;
    let queries = generate_query_set(
        &data,
        QuerySetSpec {
            vertices: 8,
            class: QueryClass::Sparse,
        },
        2,
        5,
    );
    for q in &queries {
        let cs = CandidateSpace::build(q, &data, &FilterConfig::default());
        let found = gup::find_embeddings(q, &data).unwrap();
        for emb in &found.embeddings {
            for (u, &v) in emb.iter().enumerate() {
                assert!(
                    cs.candidates(u).binary_search(&v).is_ok(),
                    "embedding assignment (u{u}, v{v}) missing from the candidate space"
                );
            }
        }
    }
}

#[test]
fn graphs_survive_text_roundtrip_and_still_match() {
    let (q, d) = gup_graph::fixtures::paper_example();
    let q2 = parse_graph(&graph_to_string(&q)).unwrap();
    let d2 = parse_graph(&graph_to_string(&d)).unwrap();
    assert_eq!(q, q2);
    assert_eq!(d, d2);
    let before = gup::count_embeddings(&q, &d).unwrap();
    let after = gup::count_embeddings(&q2, &d2).unwrap();
    assert_eq!(before, after);
}

#[test]
fn guard_statistics_reported_on_workload_queries() {
    let data = Dataset::Human.generate(0.02).graph;
    let queries = generate_query_set(
        &data,
        QuerySetSpec {
            vertices: 8,
            class: QueryClass::Dense,
        },
        2,
        13,
    );
    for q in &queries {
        let cfg = GupConfig {
            limits: limits(),
            ..GupConfig::default()
        };
        let matcher = GupMatcher::<1>::new(q, &data, cfg).unwrap();
        let (result, memory) = matcher.run_with_memory_report();
        assert!(result.stats.recursions > 0);
        assert!(memory.candidate_space_bytes > 0);
        assert!(memory.reservation_bytes > 0);
        // Guard share must be a sane percentage.
        let share = memory.guard_share_percent();
        assert!((0.0..=100.0).contains(&share));
    }
}

#[test]
fn dataset_catalog_supports_all_query_classes() {
    // Smoke-test the whole catalog at a tiny scale: each dataset must produce at least
    // one usable sparse 8-vertex query that GuP accepts.
    for dataset in Dataset::ALL {
        let data = dataset.generate(0.004).graph;
        let queries = generate_query_set(
            &data,
            QuerySetSpec {
                vertices: 8,
                class: QueryClass::Sparse,
            },
            1,
            3,
        );
        if let Some(q) = queries.first() {
            let cfg = GupConfig {
                limits: limits(),
                ..GupConfig::default()
            };
            assert!(
                GupMatcher::<1>::new(q, &data, cfg).is_ok(),
                "{}",
                dataset.name()
            );
        }
    }
}
