//! Differential fuzzing against the brute-force oracle, through the sink layer.
//!
//! Seed-pinned Erdős–Rényi and power-law `(data, query)` pairs are run through every
//! engine with every built-in sink, and all observable outputs are cross-checked
//! against `brute_force`:
//!
//! * `CountOnly` count == `CollectAll` length == oracle count, per engine;
//! * `FirstK(k)` retains exactly `min(k, total)` embeddings for `k` below, at, and
//!   above the true count — and when it truncates, the search terminated early;
//! * `CallbackSink` sees exactly one report per embedding;
//! * every materialized embedding is a valid injective, label- and
//!   adjacency-preserving map, and the collected multiset has no duplicates;
//! * the parallel driver delivers the same count through a counting sink.
//!
//! All instances are deliberately small (the oracle is exponential), keeping the
//! whole suite well under the CI budget.

use gup::sink::{CallbackSink, CollectAll, CountOnly, FirstK, SinkControl};
use gup::{GupConfig, GupMatcher, SearchLimits};
use gup_baselines::{
    brute_force, BacktrackingBaseline, BaselineKind, BaselineLimits, JoinBaseline,
};
use gup_graph::generate::{
    erdos_renyi_graph, power_law_graph, random_walk_query, ErdosRenyiConfig, PowerLawConfig,
};
use gup_graph::{Graph, VertexId};
use gup_order::OrderingStrategy;
use rand::rngs::SmallRng;
use rand::SeedableRng;

mod common;
use common::assert_valid_embedding;

/// The `k` values `FirstK` is probed with: below, at, and above the true count.
fn first_k_probes(total: u64) -> Vec<u64> {
    let mut ks = vec![0, 1, total / 2 + 1, total, total + 3];
    ks.sort_unstable();
    ks.dedup();
    ks
}

fn matcher(query: &Graph, data: &Graph) -> GupMatcher {
    let cfg = GupConfig {
        limits: SearchLimits::UNLIMITED,
        ..GupConfig::default()
    };
    GupMatcher::<1>::new(query, data, cfg).expect("valid query")
}

/// Drives one engine family's sink surface and cross-checks it against `expected`.
fn check_gup_sinks(name: &str, query: &Graph, data: &Graph, expected: u64) {
    let m = matcher(query, data);

    let mut count = CountOnly::new();
    m.run_with_sink(&mut count);
    assert_eq!(count.count(), expected, "{name}: GuP CountOnly");

    let mut all = CollectAll::new();
    let stats = m.run_with_sink(&mut all);
    assert_eq!(all.len() as u64, expected, "{name}: GuP CollectAll");
    assert_eq!(stats.embeddings, expected, "{name}: GuP stats drift");
    let mut sorted: Vec<Vec<VertexId>> = all.embeddings().to_vec();
    sorted.sort();
    let deduped = sorted.len();
    sorted.dedup();
    assert_eq!(sorted.len(), deduped, "{name}: GuP duplicate embeddings");
    assert_eq!(
        sorted,
        brute_force::enumerate(query, data),
        "{name}: GuP embedding set differs from the oracle"
    );
    for emb in all.embeddings() {
        assert_valid_embedding(name, query, data, emb);
    }

    for k in first_k_probes(expected) {
        let mut first = FirstK::new(k);
        let stats = m.run_with_sink(&mut first);
        let kept = first.embeddings().len() as u64;
        assert_eq!(kept, k.min(expected), "{name}: GuP FirstK({k})");
        assert_eq!(stats.embeddings, kept, "{name}: GuP FirstK({k}) stats");
        if k < expected {
            assert!(
                stats.terminated_early(),
                "{name}: GuP FirstK({k}) truncated without early termination"
            );
        }
        for emb in first.embeddings() {
            assert_valid_embedding(name, query, data, emb);
        }
    }

    let mut callbacks = 0u64;
    {
        let mut cb = CallbackSink::new(|_emb: &[VertexId]| {
            callbacks += 1;
            SinkControl::Continue
        });
        m.run_with_sink(&mut cb);
    }
    assert_eq!(callbacks, expected, "{name}: GuP CallbackSink");

    // The work-stealing driver through the same counting-sink front door.
    let mut parallel_count = CountOnly::new();
    m.run_parallel_with_sink(4, &mut parallel_count);
    assert_eq!(
        parallel_count.count(),
        expected,
        "{name}: GuP parallel CountOnly"
    );

    // A streaming sink that stops on its first report (`may_stop`, no capacity)
    // must see exactly one embedding through the parallel entry point too — the
    // stop is honored live, not after a full buffered enumeration.
    if expected > 0 {
        let mut reports = 0u64;
        {
            let mut stop_at_first = CallbackSink::new(|_emb: &[VertexId]| {
                reports += 1;
                SinkControl::Stop
            });
            let stats = m.run_parallel_with_sink(4, &mut stop_at_first);
            assert!(stats.stopped_by_sink, "{name}: live stop flag");
            assert_eq!(stats.embeddings, 1, "{name}: live stop count");
        }
        assert_eq!(
            reports, 1,
            "{name}: parallel CallbackSink stop was buffered"
        );
    }
}

fn check_baseline_sinks(name: &str, query: &Graph, data: &Graph, expected: u64) {
    for kind in BaselineKind::ALL {
        let engine = BacktrackingBaseline::<1>::new(query, data, kind).expect("valid query");

        let mut count = CountOnly::new();
        engine.run_with_sink(BaselineLimits::UNLIMITED, &mut count);
        assert_eq!(count.count(), expected, "{name}: {} CountOnly", kind.name());

        let mut all = CollectAll::new();
        engine.run_with_sink(BaselineLimits::UNLIMITED, &mut all);
        assert_eq!(
            all.len() as u64,
            expected,
            "{name}: {} CollectAll",
            kind.name()
        );
        let mut sorted: Vec<Vec<VertexId>> = all.into_embeddings();
        sorted.sort();
        assert_eq!(
            sorted,
            brute_force::enumerate(query, data),
            "{name}: {} embedding set differs from the oracle",
            kind.name()
        );

        for k in first_k_probes(expected) {
            let mut first = FirstK::new(k);
            let result = engine.run_with_sink(BaselineLimits::UNLIMITED, &mut first);
            assert_eq!(
                first.embeddings().len() as u64,
                k.min(expected),
                "{name}: {} FirstK({k})",
                kind.name()
            );
            if k > 0 && k < expected {
                assert!(
                    result.terminated_early(),
                    "{name}: {} FirstK({k}) truncated without early termination",
                    kind.name()
                );
            }
            for emb in first.embeddings() {
                assert_valid_embedding(name, query, data, emb);
            }
        }
    }

    let join = JoinBaseline::new(query, data, OrderingStrategy::GqlStyle).expect("valid query");
    let mut all = CollectAll::new();
    join.run_with_sink(BaselineLimits::UNLIMITED, &mut all);
    assert_eq!(all.len() as u64, expected, "{name}: join CollectAll");
    let mut sorted: Vec<Vec<VertexId>> = all.into_embeddings();
    sorted.sort();
    assert_eq!(
        sorted,
        brute_force::enumerate(query, data),
        "{name}: join embedding set differs from the oracle"
    );
    for k in first_k_probes(expected) {
        let mut first = FirstK::new(k);
        join.run_with_sink(BaselineLimits::UNLIMITED, &mut first);
        assert_eq!(
            first.embeddings().len() as u64,
            k.min(expected),
            "{name}: join FirstK({k})"
        );
    }
}

fn check_oracle_sinks(name: &str, query: &Graph, data: &Graph, expected: u64) {
    // The oracle itself honors the sink protocol (so FirstK is exact there too).
    let mut count = CountOnly::new();
    brute_force::enumerate_with_sink(query, data, &mut count);
    assert_eq!(count.count(), expected, "{name}: oracle CountOnly");
    for k in first_k_probes(expected) {
        let mut first = FirstK::new(k);
        brute_force::enumerate_with_sink(query, data, &mut first);
        assert_eq!(
            first.embeddings().len() as u64,
            k.min(expected),
            "{name}: oracle FirstK({k})"
        );
    }
}

fn check_instance(name: &str, query: &Graph, data: &Graph) -> u64 {
    let expected = brute_force::count(query, data);
    check_oracle_sinks(name, query, data, expected);
    check_gup_sinks(name, query, data, expected);
    check_baseline_sinks(name, query, data, expected);
    expected
}

#[test]
fn erdos_renyi_pairs_agree_through_every_sink() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF01);
    let mut tested = 0;
    let mut with_embeddings = 0;
    for seed in 0..24u64 {
        let data = erdos_renyi_graph(&ErdosRenyiConfig {
            vertices: 14 + (seed % 5) as usize,
            edge_probability: 0.22 + 0.02 * (seed % 3) as f64,
            labels: 2 + (seed % 2) as usize,
            seed,
        });
        let size = 3 + (seed % 3) as usize;
        let Some(query) = random_walk_query(&data, size, &mut rng) else {
            continue;
        };
        let count = check_instance(&format!("er seed {seed}"), &query, &data);
        tested += 1;
        if count > 0 {
            with_embeddings += 1;
        }
    }
    assert!(tested >= 12, "only {tested} ER instances were generated");
    assert!(
        with_embeddings >= 6,
        "only {with_embeddings} ER instances had embeddings — the fuzz lost its teeth"
    );
}

#[test]
fn power_law_pairs_agree_through_every_sink() {
    let mut rng = SmallRng::seed_from_u64(0xD1FF02);
    let mut tested = 0;
    for seed in [3u64, 9, 21] {
        let data = power_law_graph(&PowerLawConfig {
            vertices: 110 + 10 * (seed % 3) as usize,
            edges_per_vertex: 3,
            labels: 4,
            label_skew: 0.9,
            extra_edge_fraction: 0.08,
            seed,
        });
        for _ in 0..3 {
            let Some(query) = random_walk_query(&data, 4, &mut rng) else {
                continue;
            };
            check_instance(&format!("pl seed {seed}"), &query, &data);
            tested += 1;
        }
    }
    assert!(tested >= 6, "only {tested} power-law instances ran");
}

#[test]
fn single_vertex_queries_agree_across_engines() {
    // Degenerate arity regression: a 1-vertex query counts label occurrences. (The
    // join baseline used to report 0 here — every engine must agree now.)
    let data = erdos_renyi_graph(&ErdosRenyiConfig {
        vertices: 12,
        edge_probability: 0.3,
        labels: 3,
        seed: 77,
    });
    for label in 0..3u32 {
        let query = gup_graph::builder::graph_from_edges(&[label], &[]);
        let name = format!("single-vertex label {label}");
        check_instance(&name, &query, &data);
    }
}
