//! Helpers shared by the integration-test binaries (`mod common;`).

use gup_graph::{Graph, VertexId};

/// Asserts that `emb` is a valid embedding of `query` in `data` per Definition 2.1:
/// right arity, label-preserving, adjacency-preserving, and injective.
#[allow(dead_code)] // not every test binary uses every helper
pub fn assert_valid_embedding(name: &str, query: &Graph, data: &Graph, emb: &[VertexId]) {
    assert_eq!(emb.len(), query.vertex_count(), "{name}: wrong arity");
    for u in query.vertices() {
        assert_eq!(
            query.label(u),
            data.label(emb[u as usize]),
            "{name}: label constraint violated"
        );
    }
    for (a, b) in query.edges() {
        assert!(
            data.has_edge(emb[a as usize], emb[b as usize]),
            "{name}: adjacency constraint violated"
        );
    }
    let mut seen = emb.to_vec();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), emb.len(), "{name}: non-injective embedding");
}

/// Draws one valid [`GraphDelta`](gup_graph::delta::GraphDelta) against the
/// current state of `graph`: mostly edge inserts (so standing queries have
/// something to fire on), some deletes, occasionally a new vertex.
#[allow(dead_code)] // not every test binary uses every helper
pub fn random_delta(
    graph: &Graph,
    labels: usize,
    rng: &mut rand::rngs::SmallRng,
) -> gup_graph::delta::GraphDelta {
    use gup_graph::delta::GraphDelta;
    use rand::Rng;
    loop {
        match rng.gen_range(0..10u32) {
            0 => {
                return GraphDelta::AddVertex {
                    label: rng.gen_range(0..labels.max(1)) as u32,
                }
            }
            1..=6 => {
                let n = graph.vertex_count();
                if n < 2 {
                    continue;
                }
                // Rejection-sample a non-edge; fall through to another op if
                // the graph got too dense to find one quickly.
                for _ in 0..64 {
                    let a = rng.gen_range(0..n) as VertexId;
                    let b = rng.gen_range(0..n) as VertexId;
                    if a != b && !graph.has_edge(a, b) {
                        return GraphDelta::AddEdge { a, b };
                    }
                }
            }
            _ => {
                let m = graph.edge_count();
                if m == 0 {
                    continue;
                }
                let target = rng.gen_range(0..m);
                if let Some((a, b)) = graph.edges().nth(target) {
                    return GraphDelta::RemoveEdge { a, b };
                }
            }
        }
    }
}
