//! Helpers shared by the integration-test binaries (`mod common;`).

use gup_graph::{Graph, VertexId};

/// Asserts that `emb` is a valid embedding of `query` in `data` per Definition 2.1:
/// right arity, label-preserving, adjacency-preserving, and injective.
pub fn assert_valid_embedding(name: &str, query: &Graph, data: &Graph, emb: &[VertexId]) {
    assert_eq!(emb.len(), query.vertex_count(), "{name}: wrong arity");
    for u in query.vertices() {
        assert_eq!(
            query.label(u),
            data.label(emb[u as usize]),
            "{name}: label constraint violated"
        );
    }
    for (a, b) in query.edges() {
        assert!(
            data.has_edge(emb[a as usize], emb[b as usize]),
            "{name}: adjacency constraint violated"
        );
    }
    let mut seen = emb.to_vec();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), emb.len(), "{name}: non-injective embedding");
}
