//! Deadline-enforcement regressions for the session/batch layer.
//!
//! Two holes are pinned closed here:
//!
//! 1. The brute-force oracle used to enforce its deadline only **between reported
//!    embeddings**, so a zero-match adversarial query (whose sink is never called)
//!    ran to completion no matter the timeout. The deadline is now sampled
//!    periodically inside the enumeration.
//! 2. `Session::run_batch` collapses an already-expired shared deadline to a zero
//!    remaining budget; every engine must interpret that as "fail fast with
//!    `hit_time_limit`" — not as an unlimited run, and not as license to pay a
//!    full filter pass first.

use gup::session::{Engine, Session};
use gup::sink::CountOnly;
use gup::{Gcs, GupConfig, GupError};
use gup_graph::builder::graph_from_edges;
use gup_graph::fixtures;
use gup_graph::generate::{power_law_graph, PowerLawConfig};
use gup_graph::Graph;
use std::time::{Duration, Instant};

/// A data graph and query engineered so that brute force grinds for a long time
/// while finding **zero** matches: a label-0 clique hosts an astronomical number of
/// partial path matches, but the query's final vertex wears a label the data graph
/// does not contain.
fn zero_match_grinder() -> (Graph, Graph) {
    let n = 26u32;
    let mut labels = vec![0u32; n as usize];
    labels.push(1);
    let mut edges = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            edges.push((a, b));
        }
    }
    let data = graph_from_edges(&labels, &edges);
    let query = graph_from_edges(
        &[0, 0, 0, 0, 0, 0, 0, 9],
        &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7)],
    );
    (query, data)
}

/// Acceptance criterion: a zero-match brute-force query with a 50 ms timeout
/// returns `hit_time_limit = true` in well under a second.
#[test]
fn zero_match_brute_force_observes_a_50ms_timeout() {
    let (query, data) = zero_match_grinder();
    let session = Session::new(data);
    let start = Instant::now();
    let stats = session
        .query(&query)
        .method(Engine::BruteForce)
        .unlimited()
        .timeout(Duration::from_millis(50))
        .run_with_sink(&mut CountOnly::new())
        .unwrap();
    let elapsed = start.elapsed();
    assert!(stats.hit_time_limit, "deadline never observed");
    assert_eq!(stats.embeddings, 0);
    assert!(
        elapsed < Duration::from_secs(1),
        "50 ms budget took {elapsed:?}"
    );
}

/// A batch whose first query exhausts the shared budget: the remaining queries
/// must fail fast with `hit_time_limit = true` — zero work (no recursions, no
/// embeddings) and near-zero latency, instead of running unlimited or paying a
/// filter pass per query.
#[test]
fn batch_remainder_fails_fast_once_the_budget_is_exhausted() {
    let (grinder_query, data) = zero_match_grinder();
    let (paper_query, _paper_data) = fixtures::paper_example();
    // The paper query's labels exist in the grinder data graph? Irrelevant — what
    // matters is that queries 2..N get *some* valid query; use the grinder query
    // again plus a trivial one.
    let trivial = graph_from_edges(&[0, 0], &[(0, 1)]);
    let queries = vec![
        grinder_query.clone(),
        trivial.clone(),
        grinder_query,
        trivial,
        paper_query,
    ];

    let session = Session::new(data);
    let start = Instant::now();
    let report = session
        .batch()
        .method(Engine::BruteForce)
        .unlimited()
        .timeout(Duration::from_millis(40))
        .run(&queries);
    let elapsed = start.elapsed();

    // Query 0 burned the whole budget and reports the timeout.
    let first = report.queries[0].result.as_ref().unwrap();
    assert!(first.hit_time_limit, "first query must report the timeout");
    // Every later query failed fast: timeout flag set, nothing executed.
    for q in &report.queries[1..] {
        let stats = q.result.as_ref().unwrap();
        assert!(
            stats.hit_time_limit,
            "query {} must inherit the exhausted budget",
            q.index
        );
        assert_eq!(stats.embeddings, 0, "query {}", q.index);
        assert_eq!(stats.recursions, 0, "query {}", q.index);
        assert!(
            q.elapsed < Duration::from_millis(250),
            "query {} took {:?} after the budget was spent",
            q.index,
            q.elapsed
        );
    }
    assert!(
        elapsed < Duration::from_secs(2),
        "whole 40 ms-budget batch took {elapsed:?}"
    );
}

/// The same exhausted-budget contract holds for every engine family, including the
/// ones that would otherwise happily run unlimited on a zero remaining budget.
#[test]
fn every_engine_fails_fast_on_an_expired_shared_deadline() {
    let (query, data) = fixtures::paper_example();
    let session = Session::new(data);
    for engine in Engine::ALL {
        let start = Instant::now();
        let report = session
            .batch()
            .method(engine)
            .unlimited()
            .timeout(Duration::ZERO)
            .run(&[query.clone(), query.clone()]);
        let elapsed = start.elapsed();
        for q in &report.queries {
            let stats = q.result.as_ref().unwrap();
            assert!(
                stats.hit_time_limit,
                "engine {}: query {} ignored the expired deadline",
                engine.name(),
                q.index
            );
            assert_eq!(stats.embeddings, 0, "engine {}", engine.name());
        }
        assert!(
            elapsed < Duration::from_secs(1),
            "engine {}: expired-deadline batch took {elapsed:?}",
            engine.name()
        );
    }
}

/// A single-label data graph big enough that the candidate filter pass *alone*
/// is substantial work: with one label, LDF keeps all 60 000 vertices as
/// candidates for every vertex of an 8-path, NLF can reject nothing, and the
/// DAG-DP refinement plus candidate-edge materialization grind through millions
/// of candidate-constraint pairs before any search could start.
fn filter_grinder() -> (Graph, Graph) {
    let data = power_law_graph(&PowerLawConfig {
        vertices: 60_000,
        edges_per_vertex: 20,
        labels: 1,
        label_skew: 0.0,
        extra_edge_fraction: 0.0,
        seed: 7,
    });
    let query = fixtures::path(8, 0);
    (query, data)
}

/// The filter-pass deadline hole, pinned shut at the lowest level: a deadline
/// that expires mid-filter aborts `Gcs::build` with `FilterTimeout` instead of
/// completing the candidate space long after the budget is gone.
#[test]
fn gcs_build_aborts_when_the_deadline_expires_mid_filter() {
    let (query, data) = filter_grinder();
    let mut config = GupConfig::default();
    config.limits.deadline = Some(Instant::now() + Duration::from_millis(2));
    let start = Instant::now();
    let err = Gcs::<1>::build(&query, &data, &config)
        .expect_err("a 2 ms budget cannot cover this filter pass");
    let elapsed = start.elapsed();
    assert!(matches!(err, GupError::FilterTimeout), "{err:?}");
    assert!(
        elapsed < Duration::from_millis(200),
        "mid-filter abort took {elapsed:?}"
    );
}

/// Acceptance criterion for the filter-pass hole: with a 50 ms budget on a query
/// whose filter pass alone used to blow it, **every** engine family comes back
/// promptly with `hit_time_limit = true` — whether the budget dies in the filter
/// (typed `FilterTimeout`, mapped to the flag) or in the first slice of search.
#[test]
fn every_engine_observes_a_50ms_budget_dominated_by_the_filter_pass() {
    let (query, data) = filter_grinder();
    let session = Session::new(data);
    for engine in Engine::ALL {
        let start = Instant::now();
        let stats = session
            .query(&query)
            .method(engine)
            .unlimited()
            .timeout(Duration::from_millis(50))
            .run_with_sink(&mut CountOnly::new())
            .unwrap();
        let elapsed = start.elapsed();
        assert!(
            stats.hit_time_limit,
            "engine {}: 50 ms budget never observed ({} embeddings, {:?})",
            engine.name(),
            stats.embeddings,
            elapsed
        );
        assert!(
            elapsed < Duration::from_millis(400),
            "engine {}: 50 ms budget took {elapsed:?}",
            engine.name()
        );
    }
}

/// GuP flavor of the exhausted-budget batch: a heavy *many*-match query burns the
/// budget through the engine's periodic in-search deadline sampling, and the
/// remaining queries fail fast.
#[test]
fn gup_batch_remainder_fails_fast_too() {
    // K22 with one label: a 6-path query has ~53 million embeddings — far more
    // than a release build can enumerate inside a 30 ms budget.
    let n = 22u32;
    let labels = vec![0u32; n as usize];
    let mut edges = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            edges.push((a, b));
        }
    }
    let data = graph_from_edges(&labels, &edges);
    let heavy = fixtures::path(6, 0);
    let queries = vec![heavy.clone(), heavy.clone(), heavy];

    let session = Session::new(data);
    let start = Instant::now();
    let report = session
        .batch()
        .unlimited()
        .timeout(Duration::from_millis(30))
        .run(&queries);
    let elapsed = start.elapsed();

    let first = report.queries[0].result.as_ref().unwrap();
    assert!(first.hit_time_limit, "heavy GuP query must hit the budget");
    for q in &report.queries[1..] {
        let stats = q.result.as_ref().unwrap();
        assert!(stats.hit_time_limit, "query {}", q.index);
        assert_eq!(stats.recursions, 0, "query {}", q.index);
        assert!(
            q.elapsed < Duration::from_millis(250),
            "query {} took {:?}",
            q.index,
            q.elapsed
        );
    }
    assert!(
        elapsed < Duration::from_secs(2),
        "whole 30 ms-budget GuP batch took {elapsed:?}"
    );
}
