//! End-to-end tests for the `gup-serve` binary: the real executable is spawned
//! on a real TCP port (port 0 → ephemeral) and exercised over the wire —
//! correctness against the oracle, concurrent clients, per-request timeouts,
//! backpressure (`busy`), graceful reload under in-flight queries, and the
//! `healthz`/`stats` endpoints.

use gup_baselines::brute_force;
use gup_graph::builder::graph_from_edges;
use gup_graph::fixtures;
use gup_graph::io::save_graph;
use gup_graph::Graph;
use gup_serve::graph_body;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

/// A running `gup-serve` process. Killed on drop so a failing assertion cannot
/// leak servers; tests that finish cleanly shut it down over the wire instead.
struct ServerHandle {
    child: Child,
    addr: SocketAddr,
    dir: PathBuf,
}

impl ServerHandle {
    /// Writes `data` to disk, spawns the real binary on an ephemeral port with
    /// `extra_args`, and reads the bound address from its stdout.
    fn spawn(name: &str, data: &Graph, extra_args: &[&str]) -> ServerHandle {
        let dir = std::env::temp_dir().join(format!("gup_serve_{name}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let data_path = dir.join("data.graph");
        save_graph(data, &data_path).unwrap();
        let mut child = Command::new(env!("CARGO_BIN_EXE_gup-serve"))
            .args([
                "--data",
                data_path.to_str().unwrap(),
                "--listen",
                "127.0.0.1:0",
            ])
            .args(extra_args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("failed to spawn gup-serve");
        let stdout = child.stdout.take().unwrap();
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line).unwrap();
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected startup line: {line:?}"))
            .parse()
            .unwrap();
        ServerHandle { child, addr, dir }
    }

    /// Sends `shutdown` and reaps the process.
    fn shutdown(mut self) {
        let mut client = Client::connect(self.addr);
        client.send("shutdown\n");
        assert_eq!(client.read_line(), "ok shutting down");
        self.child.wait().unwrap();
        std::fs::remove_dir_all(&self.dir).ok();
        std::mem::forget(self); // already reaped
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        std::fs::remove_dir_all(&self.dir).ok();
    }
}

/// One client connection; requests and responses are interleaved manually so
/// tests can hold queries open while other clients act.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).unwrap();
        // A safety net only: every slow query in these tests carries its own
        // timeout-ms well below this.
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .unwrap();
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn send(&mut self, text: &str) {
        self.writer.write_all(text.as_bytes()).unwrap();
        self.writer.flush().unwrap();
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    /// Sends a query command plus graph body and returns the response lines:
    /// the `ok`/`err`/`busy` line, plus `m …`/`end` lines for `query first`.
    fn query(&mut self, command: &str, query: &Graph) -> String {
        self.send(&format!("{command}\n{}", graph_body(query)));
        self.read_line()
    }
}

fn field(line: &str, key: &str) -> u64 {
    let prefix = format!("{key}=");
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(prefix.as_str()))
        .unwrap_or_else(|| panic!("no {key}= in {line:?}"))
        .parse()
        .unwrap_or_else(|_| panic!("non-integer {key}= in {line:?}"))
}

/// A single-label complete graph: small on disk, astronomically many path
/// matches — any unlimited query against it runs until its deadline.
fn heavy_data() -> Graph {
    let n = 22u32;
    let labels = vec![0u32; n as usize];
    let mut edges = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            edges.push((a, b));
        }
    }
    graph_from_edges(&labels, &edges)
}

#[test]
fn counts_match_the_oracle_for_every_engine_over_the_wire() {
    let (query, data) = fixtures::paper_example();
    let expected = brute_force::count(&query, &data);
    let server = ServerHandle::spawn("engines", &data, &[]);
    let mut client = Client::connect(server.addr);
    for engine in ["gup", "plain", "daf", "gql", "ri", "join", "bruteforce"] {
        let line = client.query(&format!("query count engine {engine} limit 0"), &query);
        assert!(line.starts_with("ok "), "engine {engine}: {line}");
        assert_eq!(field(&line, "embeddings"), expected, "engine {engine}");
    }
    // first-k streams exactly k embeddings of the right arity, then `end`.
    let line = client.query("query first 2", &query);
    assert_eq!(field(&line, "embeddings"), 2, "{line}");
    for _ in 0..2 {
        let m = client.read_line();
        assert!(m.starts_with("m "), "{m}");
        assert_eq!(m.split_whitespace().count(), query.vertex_count() + 1);
    }
    assert_eq!(client.read_line(), "end");
    server.shutdown();
}

#[test]
fn concurrent_clients_all_get_correct_answers() {
    let (query, data) = fixtures::paper_example();
    let expected = brute_force::count(&query, &data);
    let server = ServerHandle::spawn("concurrent", &data, &["--workers", "4", "--queue", "64"]);
    let addr = server.addr;
    let handles: Vec<_> = (0..8)
        .map(|_| {
            let query = query.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr);
                for _ in 0..5 {
                    let line = client.query("query count limit 0", &query);
                    assert!(line.starts_with("ok "), "{line}");
                    assert_eq!(field(&line, "embeddings"), expected);
                }
                client.send("quit\n");
                assert_eq!(client.read_line(), "ok bye");
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let mut client = Client::connect(addr);
    client.send("stats\n");
    let stats = client.read_line();
    assert_eq!(field(&stats, "queries"), 40, "{stats}");
    assert_eq!(field(&stats, "completed"), 40, "{stats}");
    assert_eq!(field(&stats, "embeddings"), 40 * expected, "{stats}");
    server.shutdown();
}

#[test]
fn per_request_timeouts_come_back_promptly() {
    let server = ServerHandle::spawn("timeout", &heavy_data(), &[]);
    let mut client = Client::connect(server.addr);
    let heavy_query = fixtures::path(6, 0);
    let start = std::time::Instant::now();
    let line = client.query("query count timeout-ms 100 limit 0", &heavy_query);
    let elapsed = start.elapsed();
    assert!(line.starts_with("ok "), "{line}");
    assert!(line.ends_with("timed-out=true"), "{line}");
    assert!(
        elapsed < Duration::from_secs(2),
        "100 ms budget took {elapsed:?}"
    );
    // A zero timeout is a usage error, not an instant timeout.
    let line = client.query("query count timeout-ms 0", &heavy_query);
    assert!(line.starts_with("err "), "{line}");
    server.shutdown();
}

#[test]
fn full_queue_answers_busy_instead_of_buffering() {
    // One worker, one waiting slot: the third concurrent query must be refused.
    let server = ServerHandle::spawn("busy", &heavy_data(), &["--workers", "1", "--queue", "1"]);
    let heavy_query = fixtures::path(6, 0);
    let addr = server.addr;
    let slow = "query count timeout-ms 1500 limit 0";

    let mut a = Client::connect(addr);
    a.send(&format!("{slow}\n{}", graph_body(&heavy_query)));
    std::thread::sleep(Duration::from_millis(300)); // a's job reaches the worker
    let mut b = Client::connect(addr);
    b.send(&format!("{slow}\n{}", graph_body(&heavy_query)));
    std::thread::sleep(Duration::from_millis(300)); // b's job fills the queue
    let mut c = Client::connect(addr);
    let refused = c.query("query count limit 0", &heavy_query);
    assert_eq!(refused, "busy");
    // The admitted clients still complete (against their own deadlines).
    let line = a.read_line();
    assert!(
        line.starts_with("ok ") && line.ends_with("timed-out=true"),
        "{line}"
    );
    let line = b.read_line();
    assert!(
        line.starts_with("ok ") && line.ends_with("timed-out=true"),
        "{line}"
    );
    server.shutdown();
}

#[test]
fn reload_swaps_the_graph_without_dropping_in_flight_queries() {
    let server = ServerHandle::spawn("reload", &heavy_data(), &[]);
    let heavy_query = fixtures::path(6, 0);
    let (paper_query, paper_data) = fixtures::paper_example();
    let expected = brute_force::count(&paper_query, &paper_data);

    // A long-running query is in flight while the data graph is swapped.
    let mut in_flight = Client::connect(server.addr);
    in_flight.send(&format!(
        "query count timeout-ms 800 limit 0\n{}",
        graph_body(&heavy_query)
    ));
    std::thread::sleep(Duration::from_millis(200));

    let mut admin = Client::connect(server.addr);
    admin.send(&format!("reload\n{}", graph_body(&paper_data)));
    let line = admin.read_line();
    assert!(line.starts_with("ok reloaded "), "{line}");
    assert_eq!(field(&line, "vertices"), paper_data.vertex_count() as u64);

    // New queries see the new graph immediately.
    let line = admin.query("query count limit 0", &paper_query);
    assert_eq!(field(&line, "embeddings"), expected, "{line}");

    // The in-flight query finished on the old graph: a clean `ok`, not an error,
    // not a drop — it kept the pre-reload index alive through its own Arc.
    let line = in_flight.read_line();
    assert!(
        line.starts_with("ok ") && line.ends_with("timed-out=true"),
        "{line}"
    );

    // Counters survived the reload (reload itself runs no query).
    admin.send("stats\n");
    let stats = admin.read_line();
    assert_eq!(field(&stats, "queries"), 2, "{stats}");
    assert_eq!(field(&stats, "reloads"), 1, "{stats}");
    server.shutdown();
}

#[test]
fn healthz_stats_and_protocol_errors_round_trip() {
    let (query, data) = fixtures::paper_example();
    let server = ServerHandle::spawn("healthz", &data, &["--workers", "2", "--queue", "7"]);
    let mut client = Client::connect(server.addr);

    client.send("healthz\n");
    let health = client.read_line();
    assert!(health.starts_with("ok uptime-ms="), "{health}");
    assert_eq!(field(&health, "workers"), 2, "{health}");
    assert_eq!(field(&health, "queue-capacity"), 7, "{health}");

    // Malformed input gets a contextual error and the connection stays usable.
    client.send("frobnicate\n");
    assert!(client.read_line().starts_with("err unknown command"));
    client.send("query sideways\n");
    assert!(client.read_line().starts_with("err query needs a mode"));
    client.send("query count engine volcano\n");
    assert!(client.read_line().starts_with("err unknown engine"));
    // A repeated option is an error, not a silent last-win: pre-fix,
    // `limit 5 limit 0` quietly uncapped the query.
    client.send("query count limit 5 limit 0\n");
    assert!(client.read_line().starts_with("err repeated query option"));
    client.send("query count\nt 1 0\nv 0 0\nv 1 0\ne 0 1 garbage garbage\nend\n");
    assert!(client.read_line().starts_with("err bad graph"));

    let line = client.query("query count limit 0", &query);
    assert!(line.starts_with("ok "), "{line}");

    client.send("stats\n");
    let stats = client.read_line();
    assert_eq!(field(&stats, "queries"), 1, "{stats}");
    assert_eq!(field(&stats, "completed"), 1, "{stats}");
    assert_eq!(field(&stats, "failed"), 0, "{stats}");
    assert_eq!(field(&stats, "timed-out"), 0, "{stats}");
    assert_eq!(field(&stats, "reloads"), 0, "{stats}");
    server.shutdown();
}

#[test]
fn result_cache_serves_repeats_and_reload_invalidates_it() {
    // One label-0–label-1 edge query; the two data graphs give different counts,
    // so a stale cache entry surviving `reload` would be caught immediately.
    let query = graph_from_edges(&[0, 1], &[(0, 1)]);
    let before = graph_from_edges(&[0, 1, 0, 1], &[(0, 1), (2, 3), (0, 3)]);
    let after = graph_from_edges(&[0, 1], &[(0, 1)]);

    let server = ServerHandle::spawn("cache", &before, &[]);
    let mut client = Client::connect(server.addr);
    let line = client.query("query count limit 0", &query);
    assert_eq!(field(&line, "embeddings"), 3, "{line}");
    let line = client.query("query count limit 0", &query);
    assert_eq!(field(&line, "embeddings"), 3, "{line}");
    client.send("stats\n");
    let stats = client.read_line();
    assert_eq!(field(&stats, "cache-hits"), 1, "{stats}");
    assert_eq!(field(&stats, "cache-misses"), 1, "{stats}");
    assert_eq!(field(&stats, "queries"), 2, "hits still count: {stats}");

    // Reload must invalidate: the same query now reflects the new graph.
    client.send(&format!("reload\n{}", graph_body(&after)));
    assert!(client.read_line().starts_with("ok reloaded "));
    let line = client.query("query count limit 0", &query);
    assert_eq!(field(&line, "embeddings"), 1, "stale cache? {line}");
    client.send("stats\n");
    let stats = client.read_line();
    assert_eq!(field(&stats, "cache-hits"), 1, "{stats}");
    assert_eq!(field(&stats, "cache-misses"), 2, "{stats}");
    server.shutdown();
}

#[test]
fn cache_zero_disables_caching() {
    let query = graph_from_edges(&[0, 1], &[(0, 1)]);
    let data = graph_from_edges(&[0, 1, 0, 1], &[(0, 1), (2, 3)]);
    let server = ServerHandle::spawn("cache0", &data, &["--cache", "0"]);
    let mut client = Client::connect(server.addr);
    for _ in 0..3 {
        let line = client.query("query count limit 0", &query);
        assert_eq!(field(&line, "embeddings"), 2, "{line}");
    }
    client.send("stats\n");
    let stats = client.read_line();
    assert_eq!(field(&stats, "cache-hits"), 0, "{stats}");
    assert_eq!(field(&stats, "cache-misses"), 0, "{stats}");
    server.shutdown();
}

#[test]
fn stalled_watcher_does_not_wedge_other_connections() {
    // A star data graph: one delta batch hanging new leaves off the hub
    // creates hundreds of thousands of new 3-path matches — megabytes of
    // `match` lines, far more than loopback TCP buffering absorbs — so the
    // push to a watcher that never reads blocks. Pre-fix, `handle_delta` held
    // the watchers registry lock across that push, so any other connection
    // touching the registry (`stats`, `watch`, `unwatch`) hung with it. The
    // fix renders the lines under the lock but pushes only after releasing
    // it; the only lock held across the blocked push is `mutation`, which
    // `stats` does not take.
    let hub_degree = 800u32;
    let labels = vec![0u32; 1001];
    let edges: Vec<(u32, u32)> = (1..=hub_degree).map(|leaf| (0, leaf)).collect();
    let data = graph_from_edges(&labels, &edges);
    let server = ServerHandle::spawn("stall", &data, &[]);

    // The watcher registers a standing 3-path query and then stops reading.
    let mut watcher = Client::connect(server.addr);
    let standing = fixtures::path(3, 0);
    watcher.send(&format!("watch\n{}", graph_body(&standing)));
    assert_eq!(watcher.read_line(), "ok watch id=0");

    // 200 new leaves in one batch: every (old or new, new) leaf pair is a new
    // hub-centered path, ~360k embeddings into a socket nobody drains.
    let mut delta = Client::connect(server.addr);
    let mut body = String::from("delta\n");
    for leaf in hub_degree + 1..=hub_degree + 200 {
        body.push_str(&format!("ae 0 {leaf}\n"));
    }
    body.push_str("end\n");
    delta.send(&body);
    // Let the delta apply and the push reach the stalled socket.
    std::thread::sleep(Duration::from_millis(1500));

    // `stats` takes the watchers lock; it must answer while the push is stuck.
    let (tx, rx) = std::sync::mpsc::channel();
    let addr = server.addr;
    std::thread::spawn(move || {
        let mut client = Client::connect(addr);
        client.send("stats\n");
        let _ = tx.send(client.read_line());
    });
    let stats = rx
        .recv_timeout(Duration::from_secs(20))
        .expect("stats hung: a stalled watcher is wedging the watchers lock");
    assert_eq!(field(&stats, "watchers"), 1, "{stats}");
    assert_eq!(field(&stats, "deltas"), 1, "{stats}");

    // Hanging up the watcher unblocks the push; the delta client then gets
    // its reply and the server shuts down cleanly.
    drop(watcher);
    let line = delta.read_line();
    assert!(line.starts_with("ok delta applied=200 "), "{line}");
    server.shutdown();
}

#[test]
fn bad_server_usage_is_rejected() {
    // Zero --timeout-ms must be a usage error, mirroring gup-match.
    let output = Command::new(env!("CARGO_BIN_EXE_gup-serve"))
        .args(["--data", "whatever.graph", "--timeout-ms", "0"])
        .output()
        .expect("failed to spawn gup-serve");
    assert!(!output.status.success());
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("--timeout-ms must be positive"),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    for bad in [
        &["--timeout-ms", "soon"][..],
        &["--workers", "0"][..],
        &["--threads", "0"][..],
    ] {
        let output = Command::new(env!("CARGO_BIN_EXE_gup-serve"))
            .args(["--data", "whatever.graph"])
            .args(bad)
            .output()
            .expect("failed to spawn gup-serve");
        assert!(!output.status.success(), "{bad:?} must be rejected");
    }
    // Missing --data likewise.
    let output = Command::new(env!("CARGO_BIN_EXE_gup-serve"))
        .output()
        .expect("failed to spawn gup-serve");
    assert!(!output.status.success());
}
