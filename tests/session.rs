//! Session-API integration suite: the prepared-data path must be observationally
//! identical to the cold `(query, data)` path for **every** engine family and every
//! `PruningFeatures` combination, and one `Arc<PreparedData>` must serve concurrent
//! queries from many threads with schedule-independent counts.

use gup::session::{Engine, Session};
use gup::sink::{CountOnly, FirstK};
use gup::{GupConfig, GupMatcher, PreparedData, PruningFeatures, SearchLimits};
use gup_baselines::{
    brute_force, BacktrackingBaseline, BaselineKind, BaselineLimits, JoinBaseline,
};
use gup_graph::fixtures::{clique4, paper_example, path, square_with_diagonal, triangle_query};
use gup_graph::Graph;
use gup_order::OrderingStrategy;
use std::sync::Arc;

/// The golden fixture instances (same counts as `tests/golden_counts.rs`).
fn golden_instances() -> Vec<(&'static str, Graph, Graph, u64)> {
    let (paper_query, paper_data) = paper_example();
    vec![
        ("paper_example", paper_query, paper_data.clone(), 4),
        (
            "triangle_in_square",
            triangle_query(),
            square_with_diagonal(),
            4,
        ),
        ("triangle_in_paper_data", triangle_query(), paper_data, 2),
        ("clique4_in_clique4", clique4(2), clique4(2), 24),
        ("path2_on_diagonal", path(2, 0), square_with_diagonal(), 2),
        ("path3_no_match", path(3, 1), square_with_diagonal(), 0),
        ("path4_no_match", path(4, 1), square_with_diagonal(), 0),
    ]
}

fn all_feature_combinations() -> Vec<PruningFeatures> {
    (0u8..16)
        .map(|bits| PruningFeatures {
            reservation_guards: bits & 1 != 0,
            nogood_vertex_guards: bits & 2 != 0,
            nogood_edge_guards: bits & 4 != 0,
            backjumping: bits & 8 != 0,
        })
        .collect()
}

/// Every engine family, driven through one shared `PreparedData` per fixture, must
/// report the golden counts — and agree with its own cold (legacy) constructor.
#[test]
fn session_engines_match_cold_runs_on_goldens() {
    for (name, query, data, expected) in golden_instances() {
        let session = Session::new(data.clone());
        for engine in Engine::ALL {
            let prepared_count = session
                .query(&query)
                .method(engine)
                .unlimited()
                .count()
                .unwrap_or_else(|e| panic!("{name}/{}: {e}", engine.name()));
            assert_eq!(
                prepared_count,
                expected,
                "{name}: engine {} disagrees with golden count",
                engine.name()
            );
            // Cold path: the legacy per-engine entry point on the raw graphs.
            let cold_count = match engine {
                Engine::Gup => GupMatcher::<1>::new(
                    &query,
                    &data,
                    GupConfig {
                        limits: SearchLimits::UNLIMITED,
                        ..GupConfig::default()
                    },
                )
                .unwrap()
                .count(),
                Engine::Plain | Engine::Daf | Engine::Gql | Engine::Ri => {
                    let kind = match engine {
                        Engine::Plain => BaselineKind::Plain,
                        Engine::Daf => BaselineKind::DafFailingSet,
                        Engine::Gql => BaselineKind::GqlStyle,
                        _ => BaselineKind::RiStyle,
                    };
                    BacktrackingBaseline::<1>::new(&query, &data, kind)
                        .unwrap()
                        .run(BaselineLimits::UNLIMITED)
                        .embeddings
                }
                Engine::Join => JoinBaseline::new(&query, &data, OrderingStrategy::GqlStyle)
                    .unwrap()
                    .count(),
                Engine::BruteForce => brute_force::count(&query, &data),
            };
            assert_eq!(
                prepared_count,
                cold_count,
                "{name}: engine {} prepared != cold",
                engine.name()
            );
        }
    }
}

/// GuP through the session must match the cold matcher under *each of the 16*
/// feature combinations, sequentially and in parallel.
#[test]
fn session_gup_matches_cold_under_every_feature_combination() {
    for (name, query, data, expected) in golden_instances() {
        let session = Session::new(data.clone());
        for features in all_feature_combinations() {
            let prepared = session
                .query(&query)
                .features(features)
                .unlimited()
                .count()
                .unwrap();
            assert_eq!(prepared, expected, "{name} GuP[{}]", features.label());
            for threads in [2, 4] {
                let parallel = session
                    .query(&query)
                    .features(features)
                    .threads(threads)
                    .unlimited()
                    .count()
                    .unwrap();
                assert_eq!(
                    parallel,
                    expected,
                    "{name} GuP[{}] threads={threads}",
                    features.label()
                );
            }
        }
    }
}

/// One `Arc<PreparedData>` shared by concurrent threads running different queries
/// (and thread counts) must produce schedule-independent counts everywhere.
#[test]
fn arc_prepared_data_serves_concurrent_queries() {
    let (paper_query, paper_data) = paper_example();
    let prepared = Arc::new(PreparedData::new(paper_data));
    let expected_paper = 4u64;
    let expected_triangle = 2u64;

    let mut handles = Vec::new();
    for worker in 0..4 {
        let prepared = Arc::clone(&prepared);
        let paper_query = paper_query.clone();
        handles.push(std::thread::spawn(move || {
            let session = Session::from_prepared(prepared);
            for round in 0..8 {
                // Alternate engines and thread counts so the shared index is hit
                // from every code path at once.
                let engine = match (worker + round) % 3 {
                    0 => Engine::Gup,
                    1 => Engine::Daf,
                    _ => Engine::Join,
                };
                let threads = if engine == Engine::Gup {
                    1 + (round % 2)
                } else {
                    1
                };
                let n = session
                    .query(&paper_query)
                    .method(engine)
                    .threads(threads)
                    .unlimited()
                    .count()
                    .unwrap();
                assert_eq!(n, expected_paper, "worker {worker} round {round}");
                let t = session
                    .query(&triangle_query())
                    .method(engine)
                    .unlimited()
                    .count()
                    .unwrap();
                assert_eq!(t, expected_triangle, "worker {worker} round {round}");
                // Limits stay exact under sharing: exactly min(limit, total).
                let limited = session
                    .query(&paper_query)
                    .method(Engine::Gup)
                    .threads(threads)
                    .limit(3)
                    .count()
                    .unwrap();
                assert_eq!(limited, 3, "worker {worker} round {round}");
            }
        }));
    }
    for handle in handles {
        handle.join().unwrap();
    }
}

/// `run_batch` must agree query-by-query with individual runs, amortize the prep
/// time over the batch, and keep working when some queries are invalid.
#[test]
fn run_batch_matches_individual_queries() {
    let (paper_query, paper_data) = paper_example();
    let session = Session::new(paper_data);
    let queries = vec![paper_query.clone(), triangle_query(), paper_query];
    let report = session.batch().unlimited().run(&queries);
    assert_eq!(report.queries.len(), 3);
    assert_eq!(report.succeeded(), 3);
    for (i, q) in queries.iter().enumerate() {
        let individual = session.query(q).unlimited().count().unwrap();
        let stats = report.queries[i].result.as_ref().unwrap();
        assert_eq!(stats.embeddings, individual, "query {i}");
        assert_eq!(report.queries[i].prep_amortized, report.prep_time / 3);
    }
    assert_eq!(report.total_embeddings(), 10);
    assert_eq!(
        report.prepared_index_bytes,
        session.prepared().index_bytes()
    );

    // Batches tolerate (and report) unusable queries without aborting.
    let disconnected = gup_graph::builder::graph_from_edges(&[0, 0, 0, 0], &[(0, 1), (2, 3)]);
    for engine in Engine::ALL {
        let mixed = session
            .batch()
            .method(engine)
            .unlimited()
            .run(&[triangle_query(), disconnected.clone()]);
        assert_eq!(mixed.succeeded(), 1, "engine {}", engine.name());
        assert_eq!(mixed.total_embeddings(), 2, "engine {}", engine.name());
        assert!(mixed.queries[1].result.is_err());
    }
}

/// The sink surface works identically through the session front door: `first_k`
/// stops the search, counting sinks materialize nothing, and a generous batch
/// deadline does not fire.
#[test]
fn session_sinks_and_deadlines() {
    let (query, data) = paper_example();
    let session = Session::new(data);

    let outcome = session.query(&query).unlimited().first_k(2).run().unwrap();
    assert_eq!(outcome.embeddings.len(), 2);
    assert_eq!(outcome.embedding_count(), 2);
    assert!(outcome.stats.terminated_early());

    let mut sink = FirstK::new(3);
    let stats = session
        .query(&query)
        .unlimited()
        .run_with_sink(&mut sink)
        .unwrap();
    assert_eq!(sink.embeddings().len(), 3);
    assert_eq!(stats.embeddings, 3);

    let mut count = CountOnly::new();
    session
        .query(&query)
        .method(Engine::Ri)
        .unlimited()
        .run_with_sink(&mut count)
        .unwrap();
    assert_eq!(count.count(), 4);

    // A one-hour shared deadline never fires on the fixtures; counts stay exact and
    // no query reports a timeout.
    let report = session
        .batch()
        .timeout(std::time::Duration::from_secs(3600))
        .run(&[query.clone(), query]);
    assert_eq!(report.total_embeddings(), 8);
    for q in &report.queries {
        assert!(!q.result.as_ref().unwrap().hit_time_limit);
    }
}

/// The prepared index is visible in the memory report: prepared bytes are the
/// once-per-session share, the per-query total keeps its Table-3 meaning.
#[test]
fn memory_report_accounts_for_prepared_index() {
    let (query, data) = paper_example();
    let session = Session::new(data);
    let matcher = GupMatcher::<1>::with_prepared(
        &query,
        session.prepared(),
        GupConfig {
            limits: SearchLimits::UNLIMITED,
            ..GupConfig::default()
        },
    )
    .unwrap();
    let (_result, report) = matcher.run_with_memory_report();
    assert_eq!(
        report.prepared_index_bytes,
        session.prepared().index_bytes()
    );
    assert!(report.prepared_index_bytes > 0);
    assert_eq!(
        report.total_with_prepared_bytes(),
        report.total_bytes() + report.prepared_index_bytes
    );
}
