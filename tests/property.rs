//! Property-based tests (proptest) over randomly generated graphs and queries.
//!
//! The central invariant: for any labeled data graph and any connected query extracted
//! from it, GuP — with or without guards — reports exactly the same number of
//! embeddings as the brute-force reference, and every reported embedding satisfies the
//! three constraints of Definition 2.1 (label, adjacency, injectivity).
//!
//! Determinism: the vendored proptest derives each test's RNG seed from the test
//! name (override with `PROPTEST_SEED=<u64>`), and the case counts below are bounded,
//! so `cargo test -q` explores the same instances on every run and stays well under a
//! minute even on 2 cores. The `walk_seed` inputs feed `SmallRng::seed_from_u64`
//! directly, so a failing case's message (case index + seed) reproduces it exactly.

use gup::{GupConfig, GupMatcher, PruningFeatures, SearchLimits};
use gup_baselines::brute_force;
use gup_graph::builder::GraphBuilder;
use gup_graph::generate::random_walk_query;
use gup_graph::{algo, Graph};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Strategy: a random labeled graph with `n` vertices, `labels` distinct labels, and a
/// random edge set (each possible edge included with probability ~`density`).
fn arb_graph(max_vertices: usize, labels: u32, density: f64) -> impl Strategy<Value = Graph> {
    (4..=max_vertices).prop_flat_map(move |n| {
        let edges = proptest::collection::vec(any::<bool>(), n * (n - 1) / 2);
        let vertex_labels = proptest::collection::vec(0..labels, n);
        (vertex_labels, edges).prop_map(move |(ls, es)| {
            let mut b = GraphBuilder::with_capacity(n, es.len());
            for &l in &ls {
                b.add_vertex(l);
            }
            let mut idx = 0;
            for a in 0..n as u32 {
                for c in (a + 1)..n as u32 {
                    // Thin the dense upper-triangle bit vector down to roughly the
                    // requested density by keeping every k-th set bit.
                    if es[idx] && (idx as f64 * density).fract() < density {
                        b.add_edge(a, c);
                    }
                    idx += 1;
                }
            }
            b.build()
        })
    })
}

fn gup_count(query: &Graph, data: &Graph, features: PruningFeatures) -> u64 {
    let cfg = GupConfig {
        features,
        limits: SearchLimits::UNLIMITED,
        ..GupConfig::default()
    };
    GupMatcher::<1>::new(query, data, cfg)
        .unwrap()
        .run()
        .embedding_count()
}

proptest! {
    #![proptest_config(ProptestConfig {
        // Bounded so the whole file finishes in seconds; when hunting for
        // counterexamples, raise this locally or sweep PROPTEST_SEED.
        cases: 48,
        .. ProptestConfig::default()
    })]

    #[test]
    fn gup_matches_brute_force_on_random_instances(
        data in arb_graph(14, 3, 0.6),
        query_size in 3usize..6,
        walk_seed in 0u64..1000,
    ) {
        let mut rng = SmallRng::seed_from_u64(walk_seed);
        let Some(query) = random_walk_query(&data, query_size, &mut rng) else {
            return Ok(());
        };
        prop_assume!(algo::is_connected(&query));
        let expected = brute_force::count(&query, &data);
        prop_assert_eq!(gup_count(&query, &data, PruningFeatures::ALL), expected);
        prop_assert_eq!(gup_count(&query, &data, PruningFeatures::NONE), expected);
        prop_assert_eq!(gup_count(&query, &data, PruningFeatures::RESERVATION_AND_NV), expected);
    }

    #[test]
    fn reported_embeddings_satisfy_isomorphism_constraints(
        data in arb_graph(12, 2, 0.7),
        walk_seed in 0u64..1000,
    ) {
        let mut rng = SmallRng::seed_from_u64(walk_seed);
        let Some(query) = random_walk_query(&data, 4, &mut rng) else {
            return Ok(());
        };
        prop_assume!(algo::is_connected(&query));
        let result = gup::find_embeddings(&query, &data).unwrap();
        for emb in &result.embeddings {
            // Label constraint.
            for u in query.vertices() {
                prop_assert_eq!(query.label(u), data.label(emb[u as usize]));
            }
            // Adjacency constraint.
            for (a, b) in query.edges() {
                prop_assert!(data.has_edge(emb[a as usize], emb[b as usize]));
            }
            // Injectivity constraint.
            let mut seen = emb.clone();
            seen.sort_unstable();
            seen.dedup();
            prop_assert_eq!(seen.len(), emb.len());
        }
    }

    #[test]
    fn guards_never_lose_embeddings_relative_to_baseline(
        data in arb_graph(12, 2, 0.8),
        walk_seed in 0u64..500,
    ) {
        let mut rng = SmallRng::seed_from_u64(walk_seed);
        let Some(query) = random_walk_query(&data, 5, &mut rng) else {
            return Ok(());
        };
        prop_assume!(algo::is_connected(&query));
        let guarded = gup_count(&query, &data, PruningFeatures::ALL);
        let unguarded = gup_count(&query, &data, PruningFeatures::NONE);
        prop_assert_eq!(guarded, unguarded);
    }

    #[test]
    fn qvset_operations_behave_like_sets_at_64(
        a in proptest::collection::btree_set(0usize..64, 0..20),
        b in proptest::collection::btree_set(0usize..64, 0..20),
    ) {
        qvset_model_check::<1>(&a, &b)?;
    }

    #[test]
    fn qvset_operations_behave_like_sets_at_128(
        a in proptest::collection::btree_set(0usize..128, 0..30),
        b in proptest::collection::btree_set(0usize..128, 0..30),
    ) {
        qvset_model_check::<2>(&a, &b)?;
    }

    #[test]
    fn qvset_operations_behave_like_sets_at_256(
        a in proptest::collection::btree_set(0usize..256, 0..40),
        b in proptest::collection::btree_set(0usize..256, 0..40),
    ) {
        qvset_model_check::<4>(&a, &b)?;
    }
}

/// Checks every `QVSet<W>` operation against a `BTreeSet` model — shared by the
/// width-64/128/256 property instances above.
fn qvset_model_check<const W: usize>(
    a: &std::collections::BTreeSet<usize>,
    b: &std::collections::BTreeSet<usize>,
) -> Result<(), proptest::test_runner::TestCaseError> {
    use gup_graph::QVSet;
    let sa = QVSet::<W>::from_iter(a.iter().copied());
    let sb = QVSet::<W>::from_iter(b.iter().copied());
    let union: std::collections::BTreeSet<_> = a.union(b).copied().collect();
    let inter: std::collections::BTreeSet<_> = a.intersection(b).copied().collect();
    let diff: std::collections::BTreeSet<_> = a.difference(b).copied().collect();
    prop_assert_eq!(
        sa.union(sb).iter().collect::<Vec<_>>(),
        union.into_iter().collect::<Vec<_>>()
    );
    prop_assert_eq!(
        sa.intersection(sb).iter().collect::<Vec<_>>(),
        inter.into_iter().collect::<Vec<_>>()
    );
    prop_assert_eq!(
        sa.difference(sb).iter().collect::<Vec<_>>(),
        diff.iter().copied().collect::<Vec<_>>()
    );
    prop_assert_eq!(sa.len(), a.len());
    prop_assert_eq!(sa.is_subset_of(sb), a.is_subset(b));
    prop_assert_eq!(sa.max(), a.iter().next_back().copied());
    prop_assert_eq!(sa.min(), a.iter().next().copied());
    // Insert/remove round-trip through the model.
    let mut roundtrip = QVSet::<W>::new();
    for &i in a {
        roundtrip.insert(i);
    }
    for &i in b {
        roundtrip.remove(i);
    }
    prop_assert_eq!(
        roundtrip.iter().collect::<Vec<_>>(),
        diff.iter().copied().collect::<Vec<_>>()
    );
    for i in 0..QVSet::<W>::CAPACITY {
        prop_assert_eq!(sa.contains(i), a.contains(&i));
    }
    Ok(())
}
