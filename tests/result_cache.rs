//! Workspace-level correctness tests for the session result cache: a cache
//! hit must be indistinguishable from a cold run for every engine family, and
//! invalidation (what `gup-serve reload` calls) must force real reruns.

use gup::session::{Engine, Session};
use gup_graph::fixtures;
use gup_graph::generate::{power_law_graph, random_walk_query, PowerLawConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

fn mid_sized_workload() -> (gup_graph::Graph, Vec<gup_graph::Graph>) {
    let data = power_law_graph(&PowerLawConfig {
        vertices: 1_500,
        edges_per_vertex: 3,
        labels: 6,
        seed: 21,
        ..PowerLawConfig::default()
    });
    let mut rng = SmallRng::seed_from_u64(22);
    let queries: Vec<_> = [3, 4, 4, 5]
        .iter()
        .filter_map(|&size| random_walk_query(&data, size, &mut rng))
        .collect();
    assert!(!queries.is_empty());
    (data, queries)
}

/// For every engine and every query: the cold count, the cached repeat, and an
/// uncached session all agree. The cache must never change an answer.
#[test]
fn cache_hits_equal_cold_runs_across_engines() {
    let (data, queries) = mid_sized_workload();
    let prepared = Arc::new(gup_graph::PreparedData::new(data));
    let uncached = Session::from_prepared(Arc::clone(&prepared));
    let cached = Session::from_prepared(prepared).with_result_cache(64);
    for (qi, query) in queries.iter().enumerate() {
        for engine in Engine::ALL {
            let (Ok(reference), cold, warm) = (
                uncached.query(query).method(engine).count(),
                cached.query(query).method(engine).count(),
                cached.query(query).method(engine).count(),
            ) else {
                continue; // engines that reject this query reject it everywhere
            };
            assert_eq!(cold.unwrap(), reference, "query #{qi}, {engine:?}: cold");
            assert_eq!(warm.unwrap(), reference, "query #{qi}, {engine:?}: warm");
        }
    }
    let snap = cached.counters().snapshot();
    assert!(snap.cache_hits > 0, "repeats never hit: {snap:?}");
}

/// First-k through the cache returns the same embeddings as a cold first-k,
/// and cached embeddings stay valid (right arity, labels, adjacency).
#[test]
fn cached_first_k_repeats_the_cold_embeddings() {
    let (query, data) = fixtures::paper_example();
    let session = Session::new(data).with_result_cache(16);
    let cold = session.query(&query).first_k(3).run().unwrap();
    let warm = session.query(&query).first_k(3).run().unwrap();
    assert_eq!(cold.embeddings, warm.embeddings);
    assert_eq!(cold.stats.embeddings, warm.stats.embeddings);
    assert_eq!(session.counters().snapshot().cache_hits, 1);
}

/// `invalidate_cache` (the reload hook) empties the memo and forces reruns.
#[test]
fn invalidation_forces_real_reruns() {
    let (query, data) = fixtures::paper_example();
    let session = Session::new(data).with_result_cache(16);
    assert_eq!(session.query(&query).count().unwrap(), 4);
    assert_eq!(session.query(&query).count().unwrap(), 4);
    assert_eq!(session.cached_results(), 1);
    session.invalidate_cache();
    assert_eq!(session.cached_results(), 0);
    assert_eq!(session.query(&query).count().unwrap(), 4);
    let snap = session.counters().snapshot();
    assert_eq!(snap.cache_hits, 1);
    assert_eq!(snap.cache_misses, 2, "post-invalidate run must be a miss");
}

/// Clones share one cache: a clone's miss is the original's hit, and
/// invalidating through any handle clears it for all of them.
#[test]
fn clones_share_the_cache_and_its_invalidation() {
    let (query, data) = fixtures::paper_example();
    let a = Session::new(data).with_result_cache(16);
    let b = a.clone();
    assert_eq!(b.query(&query).count().unwrap(), 4);
    assert_eq!(a.query(&query).count().unwrap(), 4);
    assert_eq!(a.counters().snapshot().cache_hits, 1);
    b.invalidate_cache();
    assert_eq!(a.cached_results(), 0);
}

/// Counter bookkeeping: hits still count as served queries (so serving stats
/// stay meaningful), and hit + miss totals line up with the run count.
#[test]
fn hits_are_counted_as_served_queries() {
    let (query, data) = fixtures::paper_example();
    let session = Session::new(data).with_result_cache(16);
    for _ in 0..5 {
        assert_eq!(session.query(&query).count().unwrap(), 4);
    }
    let snap = session.counters().snapshot();
    assert_eq!(snap.queries_started, 5);
    assert_eq!(snap.queries_ok, 5);
    assert_eq!(snap.embeddings_reported, 20);
    assert_eq!(snap.cache_hits, 4);
    assert_eq!(snap.cache_misses, 1);
}
