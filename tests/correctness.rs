//! Cross-matcher correctness: every engine in the workspace — GuP under every feature
//! combination, the backtracking baselines, and the join baseline — must report exactly
//! the same embeddings as the brute-force reference on a battery of fixed and
//! randomized instances.

use gup::{GupConfig, GupMatcher, PruningFeatures, SearchLimits};
use gup_baselines::{
    brute_force, BacktrackingBaseline, BaselineKind, BaselineLimits, JoinBaseline,
};
use gup_graph::builder::graph_from_edges;
use gup_graph::generate::{
    erdos_renyi_graph, power_law_graph, random_walk_query, ErdosRenyiConfig, PowerLawConfig,
};
use gup_graph::{fixtures, Graph};
use gup_order::OrderingStrategy;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn gup_count(query: &Graph, data: &Graph, features: PruningFeatures) -> u64 {
    let cfg = GupConfig {
        features,
        limits: SearchLimits::UNLIMITED,
        ..GupConfig::default()
    };
    GupMatcher::<1>::new(query, data, cfg)
        .expect("query accepted")
        .run()
        .embedding_count()
}

fn check_all_engines(query: &Graph, data: &Graph) {
    let expected = brute_force::count(query, data);
    for features in [
        PruningFeatures::NONE,
        PruningFeatures::RESERVATION_ONLY,
        PruningFeatures::RESERVATION_AND_NV,
        PruningFeatures::RESERVATION_NV_NE,
        PruningFeatures::ALL,
    ] {
        assert_eq!(
            gup_count(query, data, features),
            expected,
            "GuP[{}] disagrees with brute force",
            features.label()
        );
    }
    for kind in BaselineKind::ALL {
        let count = BacktrackingBaseline::<1>::new(query, data, kind)
            .expect("query accepted")
            .run(BaselineLimits::UNLIMITED)
            .embeddings;
        assert_eq!(
            count,
            expected,
            "{} disagrees with brute force",
            kind.name()
        );
    }
    let join = JoinBaseline::new(query, data, OrderingStrategy::GqlStyle)
        .expect("query accepted")
        .count();
    assert_eq!(join, expected, "join baseline disagrees with brute force");
}

#[test]
fn fixed_instances_agree() {
    let (q, d) = fixtures::paper_example();
    check_all_engines(&q, &d);
    check_all_engines(
        &fixtures::triangle_query(),
        &fixtures::square_with_diagonal(),
    );
    check_all_engines(
        &fixtures::path(5, 0),
        &graph_from_edges(
            &[0; 7],
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 4),
                (4, 5),
                (5, 6),
                (6, 0),
                (1, 4),
            ],
        ),
    );
    check_all_engines(
        &fixtures::clique4(0),
        &graph_from_edges(
            &[0; 7],
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3), // K4
                (2, 4),
                (3, 4),
                (1, 4),
                (0, 4), // K5 actually
                (4, 5),
                (5, 6),
            ],
        ),
    );
}

#[test]
fn randomized_erdos_renyi_instances_agree() {
    let mut rng = SmallRng::seed_from_u64(123);
    let mut tested = 0;
    for seed in 0..30u64 {
        let data = erdos_renyi_graph(&ErdosRenyiConfig {
            vertices: 18,
            edge_probability: 0.25,
            labels: 3,
            seed,
        });
        let Some(query) = random_walk_query(&data, 4, &mut rng) else {
            continue;
        };
        if !gup_graph::algo::is_connected(&query) {
            continue;
        }
        check_all_engines(&query, &data);
        tested += 1;
    }
    assert!(
        tested >= 10,
        "not enough random instances were generated ({tested})"
    );
}

#[test]
fn randomized_power_law_instances_agree() {
    let mut rng = SmallRng::seed_from_u64(77);
    let data = power_law_graph(&PowerLawConfig {
        vertices: 120,
        edges_per_vertex: 3,
        labels: 4,
        label_skew: 0.8,
        extra_edge_fraction: 0.1,
        seed: 3,
    });
    let mut tested = 0;
    for _ in 0..20 {
        let Some(query) = random_walk_query(&data, 5, &mut rng) else {
            continue;
        };
        check_all_engines(&query, &data);
        tested += 1;
    }
    assert!(tested >= 8);
}

#[test]
fn embeddings_returned_by_gup_are_exactly_the_brute_force_set() {
    let (q, d) = fixtures::paper_example();
    let expected = brute_force::enumerate(&q, &d);
    let mut got = gup::find_embeddings(&q, &d).unwrap().embeddings;
    got.sort();
    assert_eq!(got, expected);
}

#[test]
fn parallel_run_agrees_with_sequential_on_random_graphs() {
    let data = power_law_graph(&PowerLawConfig {
        vertices: 200,
        edges_per_vertex: 3,
        labels: 3,
        label_skew: 0.5,
        extra_edge_fraction: 0.1,
        seed: 9,
    });
    let mut rng = SmallRng::seed_from_u64(5);
    let mut tested = 0;
    for _ in 0..8 {
        let Some(query) = random_walk_query(&data, 5, &mut rng) else {
            continue;
        };
        let cfg = GupConfig {
            limits: SearchLimits::UNLIMITED,
            ..GupConfig::default()
        };
        let matcher = GupMatcher::<1>::new(&query, &data, cfg).unwrap();
        let sequential = matcher.run().embedding_count();
        let parallel = matcher.run_parallel(4).embedding_count();
        assert_eq!(sequential, parallel);
        tested += 1;
    }
    assert!(tested >= 4);
}
