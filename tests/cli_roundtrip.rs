//! Integration test for the file-based workflow that backs the `gup-match` CLI:
//! write graphs to disk in the `t/v/e` format, load them back, and run every matcher
//! family on the loaded copies. (The CLI binary itself is a thin argument parser over
//! exactly this path.)

use gup::{GupConfig, GupMatcher, SearchLimits};
use gup_baselines::{
    brute_force, BacktrackingBaseline, BaselineKind, BaselineLimits, JoinBaseline,
};
use gup_graph::io::{load_graph, save_graph};
use gup_order::OrderingStrategy;
use gup_workloads::{generate_query_set, Dataset, QueryClass, QuerySetSpec};

/// Spawns the actual `gup-match` binary on fixture graphs written to disk and
/// checks that the count it reports on stdout matches the brute-force oracle, for
/// every matcher family the CLI exposes. This is the only test that exercises the
/// real argument parsing / exit-code / output-format surface end to end.
#[test]
fn gup_match_binary_reports_oracle_counts() {
    let dir = std::env::temp_dir().join(format!("gup_cli_exec_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let (query, data) = gup_graph::fixtures::paper_example();
    let data_path = dir.join("data.graph");
    let query_path = dir.join("query.graph");
    save_graph(&data, &data_path).unwrap();
    save_graph(&query, &query_path).unwrap();
    let expected = brute_force::count(&query, &data);
    assert!(
        expected > 0,
        "fixture must have embeddings for the test to be meaningful"
    );

    for method in ["gup", "gup-noguards", "daf", "gql", "ri", "join"] {
        let output = std::process::Command::new(env!("CARGO_BIN_EXE_gup-match"))
            .args([
                "--data",
                data_path.to_str().unwrap(),
                "--query",
                query_path.to_str().unwrap(),
                "--method",
                method,
                "--limit",
                "0",
            ])
            .output()
            .expect("failed to spawn gup-match");
        assert!(
            output.status.success(),
            "gup-match --method {method} exited with {:?}; stderr: {}",
            output.status,
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8(output.stdout).unwrap();
        let reported: u64 = stdout
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix("embeddings=").and_then(|v| v.parse().ok()))
            .unwrap_or_else(|| panic!("no embeddings= field in gup-match output: {stdout:?}"));
        assert_eq!(
            reported, expected,
            "gup-match --method {method} reported {reported}, oracle says {expected}"
        );
    }

    // A multi-threaded run through the CLI must agree as well.
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_gup-match"))
        .args([
            "--data",
            data_path.to_str().unwrap(),
            "--query",
            query_path.to_str().unwrap(),
            "--threads",
            "2",
            "--limit",
            "0",
        ])
        .output()
        .expect("failed to spawn gup-match");
    assert!(output.status.success());
    let stdout = String::from_utf8(output.stdout).unwrap();
    let reported: u64 = stdout
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix("embeddings=").and_then(|v| v.parse().ok()))
        .expect("no embeddings= field in threaded gup-match output");
    assert_eq!(reported, expected);

    // The sink-backed output modes: --count-only reports the same count without
    // materializing, and --first-k prints exactly k embeddings.
    for method in ["gup", "daf", "join"] {
        let output = std::process::Command::new(env!("CARGO_BIN_EXE_gup-match"))
            .args([
                "--data",
                data_path.to_str().unwrap(),
                "--query",
                query_path.to_str().unwrap(),
                "--method",
                method,
                "--limit",
                "0",
                "--count-only",
            ])
            .output()
            .expect("failed to spawn gup-match");
        assert!(output.status.success(), "--count-only --method {method}");
        let stdout = String::from_utf8(output.stdout).unwrap();
        let reported: u64 = stdout
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix("embeddings=").and_then(|v| v.parse().ok()))
            .expect("no embeddings= field in --count-only output");
        assert_eq!(reported, expected, "--count-only --method {method}");
        assert!(
            !stdout.contains("embedding\t"),
            "--count-only must not print embeddings"
        );

        let k = expected - 1; // truncating: the search must stop early
        let output = std::process::Command::new(env!("CARGO_BIN_EXE_gup-match"))
            .args([
                "--data",
                data_path.to_str().unwrap(),
                "--query",
                query_path.to_str().unwrap(),
                "--method",
                method,
                "--limit",
                "0",
                "--first-k",
                &k.to_string(),
            ])
            .output()
            .expect("failed to spawn gup-match");
        assert!(output.status.success(), "--first-k --method {method}");
        let stdout = String::from_utf8(output.stdout).unwrap();
        let printed = stdout.matches("embedding\t").count() as u64;
        assert_eq!(printed, k, "--first-k {k} --method {method} printed lines");
    }

    // Batch mode: a --queries manifest runs every listed query through one shared
    // prepared data graph and appends a per-query timing table (prep time is
    // reported once, on stderr).
    let manifest_path = dir.join("queries.txt");
    std::fs::write(
        &manifest_path,
        format!(
            "# comment lines and blanks are skipped\n\n{}\n{}\n",
            query_path.display(),
            query_path.display()
        ),
    )
    .unwrap();
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_gup-match"))
        .args([
            "--data",
            data_path.to_str().unwrap(),
            "--queries",
            manifest_path.to_str().unwrap(),
            "--limit",
            "0",
        ])
        .output()
        .expect("failed to spawn gup-match");
    assert!(
        output.status.success(),
        "--queries manifest run failed; stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).unwrap();
    let counts: Vec<u64> = stdout
        .split_whitespace()
        .filter_map(|tok| tok.strip_prefix("embeddings=").and_then(|v| v.parse().ok()))
        .collect();
    assert_eq!(
        counts,
        vec![expected, expected],
        "both manifest queries ran"
    );
    assert!(
        stdout.contains("batch:") && stdout.contains("prep"),
        "batch timing table missing from: {stdout:?}"
    );
    let stderr = String::from_utf8(output.stderr).unwrap();
    assert_eq!(
        stderr.matches("prepared in").count(),
        1,
        "prep time must be reported exactly once: {stderr:?}"
    );

    // The output modes are mutually exclusive.
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_gup-match"))
        .args([
            "--data",
            data_path.to_str().unwrap(),
            "--query",
            query_path.to_str().unwrap(),
            "--count-only",
            "--print-embeddings",
        ])
        .output()
        .expect("failed to spawn gup-match");
    assert!(
        !output.status.success(),
        "--count-only with --print-embeddings must be rejected"
    );

    // Bad usage must fail with a non-zero exit code, not succeed silently.
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_gup-match"))
        .args(["--data", data_path.to_str().unwrap()])
        .output()
        .expect("failed to spawn gup-match");
    assert!(!output.status.success(), "missing --query must be an error");

    // A zero timeout is a usage error (a zero budget would otherwise silently
    // mean "instantly timed out" or, worse, "no limit" depending on the engine).
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_gup-match"))
        .args([
            "--data",
            data_path.to_str().unwrap(),
            "--query",
            query_path.to_str().unwrap(),
            "--timeout-ms",
            "0",
        ])
        .output()
        .expect("failed to spawn gup-match");
    assert!(!output.status.success(), "--timeout-ms 0 must be rejected");
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("--timeout-ms must be positive"),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    std::fs::remove_dir_all(&dir).ok();
}

/// The persistence surface of the binary: `--save-index` alone prepares and
/// persists (exit 0, no query needed), `--index` warm starts and reports the
/// oracle count, and a corrupt or conflicting invocation fails loudly.
#[test]
fn gup_match_binary_saves_and_loads_prepared_indexes() {
    let dir = std::env::temp_dir().join(format!("gup_cli_index_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let (query, data) = gup_graph::fixtures::paper_example();
    let data_path = dir.join("data.graph");
    let query_path = dir.join("query.graph");
    let index_path = dir.join("data.gupi");
    save_graph(&data, &data_path).unwrap();
    save_graph(&query, &query_path).unwrap();
    let expected = brute_force::count(&query, &data);

    // Prepare-only invocation: no --query, saves the index, exits 0.
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_gup-match"))
        .args([
            "--data",
            data_path.to_str().unwrap(),
            "--save-index",
            index_path.to_str().unwrap(),
        ])
        .output()
        .expect("failed to spawn gup-match");
    assert!(
        output.status.success(),
        "--save-index without --query must succeed; stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("saved index to"),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    // The artifact is byte-identical to an in-process save of the same graph.
    let expected_bytes =
        gup_graph::index_io::write_index_bytes(&gup_graph::PreparedData::new(data.clone()));
    assert_eq!(std::fs::read(&index_path).unwrap(), expected_bytes);

    // Warm start: --index answers exactly like --data, for several methods.
    for method in ["gup", "daf", "join"] {
        let output = std::process::Command::new(env!("CARGO_BIN_EXE_gup-match"))
            .args([
                "--index",
                index_path.to_str().unwrap(),
                "--query",
                query_path.to_str().unwrap(),
                "--method",
                method,
                "--limit",
                "0",
            ])
            .output()
            .expect("failed to spawn gup-match");
        assert!(
            output.status.success(),
            "--index --method {method}; stderr: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8(output.stdout).unwrap();
        let reported: u64 = stdout
            .split_whitespace()
            .find_map(|tok| tok.strip_prefix("embeddings=").and_then(|v| v.parse().ok()))
            .unwrap_or_else(|| panic!("no embeddings= field in --index output: {stdout:?}"));
        assert_eq!(reported, expected, "--index --method {method}");
        assert!(
            String::from_utf8_lossy(&output.stderr).contains("loaded index in"),
            "warm start must report load time, not prepare time"
        );
    }

    // A corrupted index fails with exit code 1 and a typed message.
    let corrupt_path = dir.join("corrupt.gupi");
    let mut corrupt = expected_bytes.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0xff;
    std::fs::write(&corrupt_path, &corrupt).unwrap();
    let output = std::process::Command::new(env!("CARGO_BIN_EXE_gup-match"))
        .args([
            "--index",
            corrupt_path.to_str().unwrap(),
            "--query",
            query_path.to_str().unwrap(),
        ])
        .output()
        .expect("failed to spawn gup-match");
    assert_eq!(output.status.code(), Some(1), "corrupt index must exit 1");
    assert!(
        String::from_utf8_lossy(&output.stderr).contains("cannot load index"),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    // Usage errors: --data with --index, and --save-index from a loaded index.
    for bad in [
        vec![
            "--data",
            data_path.to_str().unwrap(),
            "--index",
            index_path.to_str().unwrap(),
            "--query",
            query_path.to_str().unwrap(),
        ],
        vec![
            "--index",
            index_path.to_str().unwrap(),
            "--save-index",
            corrupt_path.to_str().unwrap(),
            "--query",
            query_path.to_str().unwrap(),
        ],
    ] {
        let output = std::process::Command::new(env!("CARGO_BIN_EXE_gup-match"))
            .args(&bad)
            .output()
            .expect("failed to spawn gup-match");
        assert_eq!(output.status.code(), Some(2), "{bad:?} must be usage error");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn matchers_work_on_graphs_loaded_from_disk() {
    let dir = std::env::temp_dir().join(format!("gup_cli_roundtrip_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let data = Dataset::Yeast.generate(0.05).graph;
    let queries = generate_query_set(
        &data,
        QuerySetSpec {
            vertices: 8,
            class: QueryClass::Sparse,
        },
        2,
        17,
    );
    assert!(
        !queries.is_empty(),
        "workload generator must produce queries"
    );

    let data_path = dir.join("data.graph");
    save_graph(&data, &data_path).unwrap();
    let loaded_data = load_graph(&data_path).unwrap();
    assert_eq!(loaded_data, data);

    for (i, query) in queries.iter().enumerate() {
        let query_path = dir.join(format!("query_{i}.graph"));
        save_graph(query, &query_path).unwrap();
        let loaded_query = load_graph(&query_path).unwrap();
        assert_eq!(&loaded_query, query);

        let expected = brute_force::count(&loaded_query, &loaded_data);

        let gup_count = GupMatcher::<1>::new(
            &loaded_query,
            &loaded_data,
            GupConfig {
                limits: SearchLimits::UNLIMITED,
                ..GupConfig::default()
            },
        )
        .unwrap()
        .run()
        .embedding_count();
        assert_eq!(gup_count, expected);

        let daf = BacktrackingBaseline::<1>::new(
            &loaded_query,
            &loaded_data,
            BaselineKind::DafFailingSet,
        )
        .unwrap()
        .run(BaselineLimits::UNLIMITED)
        .embeddings;
        assert_eq!(daf, expected);

        let join = JoinBaseline::new(&loaded_query, &loaded_data, OrderingStrategy::GqlStyle)
            .unwrap()
            .count();
        assert_eq!(join, expected);
    }

    std::fs::remove_dir_all(&dir).ok();
}
