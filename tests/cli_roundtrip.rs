//! Integration test for the file-based workflow that backs the `gup-match` CLI:
//! write graphs to disk in the `t/v/e` format, load them back, and run every matcher
//! family on the loaded copies. (The CLI binary itself is a thin argument parser over
//! exactly this path.)

use gup::{GupConfig, GupMatcher, SearchLimits};
use gup_baselines::{brute_force, BacktrackingBaseline, BaselineKind, BaselineLimits, JoinBaseline};
use gup_graph::io::{load_graph, save_graph};
use gup_order::OrderingStrategy;
use gup_workloads::{generate_query_set, Dataset, QueryClass, QuerySetSpec};

#[test]
fn matchers_work_on_graphs_loaded_from_disk() {
    let dir = std::env::temp_dir().join(format!("gup_cli_roundtrip_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let data = Dataset::Yeast.generate(0.05).graph;
    let queries = generate_query_set(
        &data,
        QuerySetSpec { vertices: 8, class: QueryClass::Sparse },
        2,
        17,
    );
    assert!(!queries.is_empty(), "workload generator must produce queries");

    let data_path = dir.join("data.graph");
    save_graph(&data, &data_path).unwrap();
    let loaded_data = load_graph(&data_path).unwrap();
    assert_eq!(loaded_data, data);

    for (i, query) in queries.iter().enumerate() {
        let query_path = dir.join(format!("query_{i}.graph"));
        save_graph(query, &query_path).unwrap();
        let loaded_query = load_graph(&query_path).unwrap();
        assert_eq!(&loaded_query, query);

        let expected = brute_force::count(&loaded_query, &loaded_data);

        let gup_count = GupMatcher::new(
            &loaded_query,
            &loaded_data,
            GupConfig {
                limits: SearchLimits::UNLIMITED,
                ..GupConfig::default()
            },
        )
        .unwrap()
        .run()
        .embedding_count();
        assert_eq!(gup_count, expected);

        let daf = BacktrackingBaseline::new(&loaded_query, &loaded_data, BaselineKind::DafFailingSet)
            .unwrap()
            .run(BaselineLimits::UNLIMITED)
            .embeddings;
        assert_eq!(daf, expected);

        let join = JoinBaseline::new(&loaded_query, &loaded_data, OrderingStrategy::GqlStyle)
            .unwrap()
            .count();
        assert_eq!(join, expected);
    }

    std::fs::remove_dir_all(&dir).ok();
}
