//! End-to-end validation of the large-query scenario family (65–256 query
//! vertices) opened by the width-generic `QVSet`.
//!
//! Every fixture from `gup_workloads::large` is run through the `Session` front
//! door on **every** engine family (GuP sequential, GuP parallel, all four
//! backtracking baselines, the join enumerator, and the brute-force oracle) and —
//! for GuP — across the standard pruning-feature ablation ladder; every count is
//! pinned against the brute-force oracle on the same host graph. The fixtures'
//! hosts embed their query by construction, so a silent zero (an engine that
//! "succeeds" by matching nothing) can never pass.
//!
//! The width boundaries themselves are covered too: 65/96 vertices dispatch to the
//! two-word engine, 130 to the four-word engine, an explicitly one-word matcher
//! still rejects 65, and 257 vertices is a typed `TooLarge` everywhere.

use gup::session::{Engine, Session};
use gup::{GupConfig, GupMatcher, PruningFeatures, SearchLimits, SessionError};
use gup_baselines::brute_force;
use gup_graph::{GraphBuilder, QueryGraphError};
use gup_workloads::large::{large_query_fixtures, LargeQueryFixture};

fn unlimited() -> GupConfig {
    GupConfig {
        limits: SearchLimits::UNLIMITED,
        ..GupConfig::default()
    }
}

const FEATURE_LADDER: [PruningFeatures; 5] = [
    PruningFeatures::NONE,
    PruningFeatures::RESERVATION_ONLY,
    PruningFeatures::RESERVATION_AND_NV,
    PruningFeatures::RESERVATION_NV_NE,
    PruningFeatures::ALL,
];

/// Golden counts: every engine × the GuP feature ladder agrees with the oracle on
/// every large fixture, driven through one shared prepared session per host.
#[test]
fn all_engines_match_brute_force_on_large_queries() {
    for LargeQueryFixture { name, query, host } in large_query_fixtures() {
        let expected = brute_force::count(&query, &host);
        assert!(
            expected >= 1,
            "{name}: host must contain the query by construction"
        );
        let session = Session::new(host).with_defaults(unlimited());

        // GuP, sequential, across the whole pruning ablation ladder.
        for features in FEATURE_LADDER {
            let count = session
                .query(&query)
                .features(features)
                .unlimited()
                .count()
                .unwrap();
            assert_eq!(
                count,
                expected,
                "{name}: GuP seq features={}",
                features.label()
            );
        }
        // GuP on the work-stealing parallel driver.
        for threads in [2, 4] {
            let count = session
                .query(&query)
                .threads(threads)
                .unlimited()
                .count()
                .unwrap();
            assert_eq!(count, expected, "{name}: GuP parallel threads={threads}");
        }
        // Every other engine family through the same session.
        for engine in Engine::ALL {
            let count = session
                .query(&query)
                .method(engine)
                .unlimited()
                .count()
                .unwrap();
            assert_eq!(count, expected, "{name}: engine {}", engine.name());
        }
    }
}

/// The acceptance-criteria pair (96 and 130 vertices) also works with limits,
/// first-k, and embedding materialization — not just raw counts.
#[test]
fn large_queries_support_the_full_request_surface() {
    for LargeQueryFixture { name, query, host } in large_query_fixtures() {
        let n = query.vertex_count();
        if n != 96 && n != 130 {
            continue;
        }
        let session = Session::new(host).with_defaults(unlimited());
        let expected = session.query(&query).unlimited().count().unwrap();
        assert!(expected >= 1, "{name}");

        // Materialized embeddings have one entry per query vertex and verify
        // against the host.
        let outcome = session.query(&query).unlimited().run().unwrap();
        assert_eq!(outcome.embedding_count(), expected, "{name}");
        for emb in &outcome.embeddings {
            assert_eq!(emb.len(), n, "{name}");
            for u in query.vertices() {
                assert_eq!(
                    query.label(u),
                    session.data().label(emb[u as usize]),
                    "{name}: label constraint"
                );
            }
            for (a, b) in query.edges() {
                assert!(
                    session.data().has_edge(emb[a as usize], emb[b as usize]),
                    "{name}: adjacency constraint"
                );
            }
            let mut used = emb.clone();
            used.sort_unstable();
            used.dedup();
            assert_eq!(used.len(), emb.len(), "{name}: injectivity constraint");
        }

        // first_k stops early and keeps exactly one.
        let first = session.query(&query).first_k(1).run().unwrap();
        assert_eq!(first.embeddings.len(), 1, "{name}");
    }
}

/// Width dispatch is real: an explicitly one-word matcher rejects a 65-vertex
/// query with a typed error naming its own 64-vertex capacity, while the session
/// transparently dispatches the same query to a wider engine.
#[test]
fn one_word_engines_still_reject_what_they_cannot_hold() {
    let fixture = &large_query_fixtures()[0]; // large-65
    assert_eq!(fixture.query.vertex_count(), 65);

    let Err(err) = GupMatcher::<1>::new(&fixture.query, &fixture.host, unlimited()) else {
        panic!("one-word matcher must reject a 65-vertex query");
    };
    assert!(format!("{err}").contains("at most 64"), "{err}");

    let session = Session::new(fixture.host.clone()).with_defaults(unlimited());
    assert!(session.query(&fixture.query).unlimited().count().unwrap() >= 1);
}

/// The new global ceiling: 257 vertices is a typed `TooLarge` from the session
/// (and names the 256-vertex limit), while exactly 256 is accepted and runs.
#[test]
fn too_large_boundary_sits_at_256() {
    // A 257-vertex path.
    let mut b = GraphBuilder::new();
    b.add_vertices(257, 0);
    for i in 0..256u32 {
        b.add_edge(i, i + 1);
    }
    let query = b.build();

    let mut b = GraphBuilder::new();
    b.add_vertices(4, 0);
    b.add_edge(0, 1);
    let data = b.build();
    let session = Session::new(data);
    let err = session.query(&query).count().unwrap_err();
    let SessionError::InvalidQuery(inner) = err else {
        panic!("expected InvalidQuery, got {err:?}");
    };
    assert_eq!(
        inner,
        QueryGraphError::TooLarge {
            vertices: 257,
            limit: 256
        }
    );

    // Exactly 256 vertices: accepted, dispatched to the four-word engine, and
    // correct (a 256-path in a 256-path with distinct labels has exactly one
    // embedding; labels increase along the path so the reversal never matches).
    let mut b = GraphBuilder::new();
    for i in 0..256u32 {
        b.add_vertex(i % 97);
    }
    for i in 0..255u32 {
        b.add_edge(i, i + 1);
    }
    let path256 = b.build();
    let session = Session::new(path256.clone()).with_defaults(unlimited());
    for engine in [Engine::Gup, Engine::Daf, Engine::BruteForce] {
        assert_eq!(
            session
                .query(&path256)
                .method(engine)
                .unlimited()
                .count()
                .unwrap(),
            1,
            "engine {}",
            engine.name()
        );
    }
}
