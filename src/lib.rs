//! # gup-suite
//!
//! Umbrella crate of the GuP reproduction workspace. It re-exports the member crates
//! so that the runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`) have a single import surface:
//!
//! * [`gup`] — the GuP matcher itself (guarded candidate space, reservation and nogood
//!   guards, backtracking with backjumping, parallel search) and the prepared-data
//!   session front door (`gup::session`) every engine family runs behind.
//! * [`gup_graph`] — the labeled-graph substrate (CSR graphs, loaders, generators,
//!   the shared `PreparedData` index).
//! * [`gup_candidate`] — candidate filtering and the candidate space.
//! * [`gup_order`] — matching-order optimizers.
//! * [`gup_baselines`] — the comparator matchers used in the evaluation.
//! * [`gup_workloads`] — synthetic datasets and query sets mirroring the paper's.
//! * [`gup_stream`] — dynamic data graphs: standing queries, delta streams, and
//!   incremental new-match reporting over `gup_graph::delta`.
//!
//! See `README.md` for the project overview, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the reproduction of every table and figure.

pub use gup;
pub use gup_baselines;
pub use gup_candidate;
pub use gup_graph;
pub use gup_order;
pub use gup_stream;
pub use gup_workloads;
