//! `gup-lint`: the workspace invariant analyzer CLI.
//!
//! Walks the workspace sources (`crates/`, `src/`, `examples/`, `tests/`;
//! skipping `vendor/` and `target/`) and reports every violation of the
//! gup-lint rule catalog — the token-local rules (clock discipline, no-alloc
//! regions, panic freedom, relaxed-atomics and unsafe audits) and the
//! scope-aware concurrency rules (lock order, guard-across-blocking, admission
//! discipline) — with file, line, rule id, and message.
//!
//! Exit status: 0 when clean, 1 on any finding, 2 on usage or I/O errors.
//! Severity (`critical` for the deadlock-shaped rules, `error` otherwise) is
//! informational: it appears in `--format json` and `--explain`, but any
//! finding fails the run.

use gup_analysis::{analyze_workspace, findings_to_json, rule_doc, severity};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
gup-lint: check workspace invariants (clock discipline, no-alloc regions,
panic freedom, relaxed-atomics audit, unsafe hygiene, lock order,
guard-across-blocking, admission discipline)

USAGE:
    gup-lint [--root <path>] [--format text|json]
    gup-lint --explain <rule>

OPTIONS:
    --root <path>      Workspace root to analyze (default: current directory)
    --format <form>    Output format: text (default) or json
    --explain <rule>   Print a rule's rationale, scope, and allow example
    -h, --help         Show this help

RULES (suppress one occurrence with `gup-lint: allow(<rule>) <reason>`;
run `gup-lint --explain <rule>` for the full story):
    clock_discipline        no raw Instant::now()/SystemTime::now() outside
                            gup_graph::deadline, benches, examples, and tests
    no_alloc                no allocating constructs between
                            `gup-lint: region(no_alloc)` and `gup-lint: end_region`
    panic_freedom           no .unwrap()/.expect()/panic!/unreachable! in
                            crates/serve, crates/core, and the persistent-index
                            mutation paths (index_io.rs, delta.rs)
    relaxed_ordering        every Ordering::Relaxed has an adjacent
                            justification comment (one mentioning \"relaxed\")
    unsafe_hygiene          every `unsafe` has an adjacent SAFETY: comment
    lock_order              nested lock acquisitions follow the declared
                            manifest order; no same-name re-acquisition
    guard_across_blocking   no lock guard held across blocking I/O (the
                            connection-writer lock is blessed for writes)
    admission_discipline    no unbounded mpsc::channel or per-loop thread
                            spawns in the serving layer
";

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(path) => root = PathBuf::from(path),
                None => return usage_error("--root needs a path"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some(other) => {
                    return usage_error(&format!("unknown format `{other}` (text or json)"))
                }
                None => return usage_error("--format needs a value (text or json)"),
            },
            "--explain" => match args.next() {
                Some(rule) => return explain(&rule),
                None => return usage_error("--explain needs a rule id"),
            },
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let findings = match analyze_workspace(&root) {
        Ok(findings) => findings,
        Err(e) => {
            eprintln!("gup-lint: failed to analyze {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    match format {
        Format::Json => println!("{}", findings_to_json(&findings)),
        Format::Text => {
            for finding in &findings {
                println!("{finding}");
            }
            if findings.is_empty() {
                eprintln!("gup-lint: clean");
            } else {
                eprintln!(
                    "gup-lint: {} finding{} — fix, or annotate with a reasoned allow",
                    findings.len(),
                    if findings.len() == 1 { "" } else { "s" }
                );
            }
        }
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `--explain <rule>`: print the rule's documentation card.
fn explain(rule: &str) -> ExitCode {
    let Some(doc) = rule_doc(rule) else {
        return usage_error(&format!(
            "unknown rule `{rule}` — run `gup-lint --help` for the catalog"
        ));
    };
    println!("{} ({})", doc.rule, severity(doc.rule));
    println!("  {}", doc.summary);
    println!();
    println!("WHY:   {}", doc.rationale);
    println!("SCOPE: {}", doc.scope);
    println!("ALLOW: {}", doc.allow_example);
    ExitCode::SUCCESS
}

fn usage_error(message: &str) -> ExitCode {
    eprintln!("gup-lint: {message}\n\n{USAGE}");
    ExitCode::from(2)
}
