//! `gup-match` — command-line subgraph matcher.
//!
//! Loads a data graph and one or more query graphs in the community `t/v/e` text
//! format and runs the selected matcher, printing a per-query summary line (and
//! optionally the embeddings themselves).
//!
//! ```text
//! gup-match --data data.graph --query query.graph
//! gup-match --data data.graph --query q1.graph --query q2.graph \
//!           --method daf --limit 100000 --timeout-ms 60000
//! gup-match --data data.graph --query query.graph --print-embeddings --threads 8
//! ```
//!
//! Methods: `gup` (default), `gup-noguards`, `daf`, `gql`, `ri`, `join`.

use gup::{GupConfig, GupMatcher, PruningFeatures, SearchLimits};
use gup_baselines::{BacktrackingBaseline, BaselineKind, BaselineLimits, JoinBaseline};
use gup_graph::io::load_graph;
use gup_graph::Graph;
use gup_order::OrderingStrategy;
use std::process::ExitCode;
use std::time::{Duration, Instant};

#[derive(Clone, Debug)]
struct Options {
    data: String,
    queries: Vec<String>,
    method: String,
    limit: Option<u64>,
    timeout: Option<Duration>,
    threads: usize,
    print_embeddings: bool,
}

fn usage() -> &'static str {
    "usage: gup-match --data <file> --query <file> [--query <file> ...]\n\
     options:\n\
       --method <gup|gup-noguards|daf|gql|ri|join>   matcher to run (default: gup)\n\
       --limit <n>            stop after n embeddings (default: 100000; 0 = unlimited)\n\
       --timeout-ms <n>       per-query time limit in milliseconds (default: none)\n\
       --threads <n>          worker threads for the GuP methods (default: 1)\n\
       --print-embeddings     print every embedding (GuP methods only)\n\
       --help                 show this message"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        data: String::new(),
        queries: Vec::new(),
        method: "gup".to_string(),
        limit: Some(100_000),
        timeout: None,
        threads: 1,
        print_embeddings: false,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--data" => {
                i += 1;
                opts.data = args.get(i).cloned().ok_or("--data needs a path")?;
            }
            "--query" => {
                i += 1;
                opts.queries
                    .push(args.get(i).cloned().ok_or("--query needs a path")?);
            }
            "--method" => {
                i += 1;
                opts.method = args.get(i).cloned().ok_or("--method needs a value")?;
            }
            "--limit" => {
                i += 1;
                let n: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--limit needs an integer")?;
                opts.limit = if n == 0 { None } else { Some(n) };
            }
            "--timeout-ms" => {
                i += 1;
                let n: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--timeout-ms needs an integer")?;
                opts.timeout = Some(Duration::from_millis(n));
            }
            "--threads" => {
                i += 1;
                opts.threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--threads needs an integer")?;
            }
            "--print-embeddings" => opts.print_embeddings = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if opts.data.is_empty() {
        return Err("missing --data".to_string());
    }
    if opts.queries.is_empty() {
        return Err("missing --query".to_string());
    }
    Ok(opts)
}

fn run_query(query: &Graph, data: &Graph, opts: &Options) -> Result<String, String> {
    let start = Instant::now();
    let line = match opts.method.as_str() {
        "gup" | "gup-noguards" => {
            let config = GupConfig {
                features: if opts.method == "gup" {
                    PruningFeatures::ALL
                } else {
                    PruningFeatures::NONE
                },
                collect_embeddings: opts.print_embeddings,
                limits: SearchLimits {
                    max_embeddings: opts.limit,
                    time_limit: opts.timeout,
                    ..SearchLimits::UNLIMITED
                },
                ..GupConfig::default()
            };
            let matcher = GupMatcher::new(query, data, config).map_err(|e| e.to_string())?;
            let result = if opts.threads > 1 {
                matcher.run_parallel(opts.threads)
            } else {
                matcher.run()
            };
            if opts.print_embeddings {
                for emb in &result.embeddings {
                    let cells: Vec<String> = emb.iter().map(|v| v.to_string()).collect();
                    println!("embedding\t{}", cells.join("\t"));
                }
            }
            let parallel_info = if opts.threads > 1 {
                format!(
                    " tasks={} splits={} steals={}",
                    result.stats.tasks_executed,
                    result.stats.frames_split,
                    result.stats.tasks_stolen
                )
            } else {
                String::new()
            };
            format!(
                "embeddings={} recursions={} futile={} backjumps={} pruned_by_guards={}{} elapsed={:?}{}",
                result.embedding_count(),
                result.stats.recursions,
                result.stats.futile_recursions,
                result.stats.backjumps,
                result.stats.pruned_by_reservation + result.stats.pruned_by_nogood_vertex,
                parallel_info,
                start.elapsed(),
                if result.stats.terminated_early() { " (terminated early)" } else { "" }
            )
        }
        "daf" | "gql" | "ri" => {
            let kind = match opts.method.as_str() {
                "daf" => BaselineKind::DafFailingSet,
                "gql" => BaselineKind::GqlStyle,
                _ => BaselineKind::RiStyle,
            };
            let matcher =
                BacktrackingBaseline::new(query, data, kind).map_err(|e| e.to_string())?;
            let result = matcher.run(BaselineLimits {
                max_embeddings: opts.limit,
                time_limit: opts.timeout,
            });
            format!(
                "embeddings={} recursions={} futile={} elapsed={:?}{}",
                result.embeddings,
                result.recursions,
                result.futile_recursions,
                start.elapsed(),
                if result.terminated_early() {
                    " (terminated early)"
                } else {
                    ""
                }
            )
        }
        "join" => {
            let matcher = JoinBaseline::new(query, data, OrderingStrategy::GqlStyle)
                .ok_or("query rejected (empty, disconnected, or > 64 vertices)")?;
            let result = matcher.run(BaselineLimits {
                max_embeddings: opts.limit,
                time_limit: opts.timeout,
            });
            format!(
                "embeddings={} intermediate_results={} elapsed={:?}{}",
                result.embeddings,
                result.recursions,
                start.elapsed(),
                if result.terminated_early() {
                    " (terminated early)"
                } else {
                    ""
                }
            )
        }
        other => {
            return Err(format!(
                "unknown method '{other}' (expected gup, gup-noguards, daf, gql, ri, join)"
            ))
        }
    };
    Ok(line)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{}", usage());
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };
    let data = match load_graph(&opts.data) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: cannot load data graph {}: {e}", opts.data);
            return ExitCode::from(1);
        }
    };
    eprintln!(
        "data graph: {} vertices, {} edges, {} labels",
        data.vertex_count(),
        data.edge_count(),
        data.label_count()
    );
    let mut failures = 0;
    for path in &opts.queries {
        match load_graph(path) {
            Ok(query) => match run_query(&query, &data, &opts) {
                Ok(line) => println!("{path}\tmethod={}\t{line}", opts.method),
                Err(e) => {
                    eprintln!("error: query {path}: {e}");
                    failures += 1;
                }
            },
            Err(e) => {
                eprintln!("error: cannot load query {path}: {e}");
                failures += 1;
            }
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
