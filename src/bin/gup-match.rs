//! `gup-match` — command-line subgraph matcher.
//!
//! Loads a data graph and one or more query graphs in the community `t/v/e` text
//! format and runs the selected matcher, printing a per-query summary line (and
//! optionally the embeddings themselves). The data graph is **prepared once** — one
//! shared [`Session`] / `PreparedData` index serves every query, so batch runs pay
//! the per-data-graph cost a single time (reported once on stderr).
//!
//! ```text
//! gup-match --data data.graph --query query.graph
//! gup-match --data data.graph --query q1.graph --query q2.graph \
//!           --method daf --limit 100000 --timeout-ms 60000
//! gup-match --data data.graph --queries manifest.txt      # newline-separated paths
//! gup-match --data data.graph --query query.graph --print-embeddings --threads 8
//! gup-match --data data.graph --query query.graph --count-only
//! gup-match --data data.graph --query query.graph --first-k 10
//! gup-match --data data.graph --save-index data.gupi      # prepare once, persist
//! gup-match --index data.gupi --query query.graph         # warm start, no prepare
//! ```
//!
//! Persistence: `--save-index <path>` writes the prepared index to disk in the
//! versioned, checksummed `gup_graph::index_io` format (with no queries it just
//! prepares, saves, and exits). `--index <path>` loads such a file instead of
//! parsing and preparing a text graph — warm starts skip the whole preparation
//! pass, which dominates process startup on large data graphs.
//!
//! Methods: `gup` (default), `gup-noguards`, `daf`, `gql`, `ri`, `join`.
//!
//! Output modes (all methods): the default prints the per-query summary line;
//! `--count-only` streams through a counting sink (no embedding is ever
//! materialized); `--first-k <k>` stops the search after the first `k` embeddings
//! and prints them; `--print-embeddings` materializes and prints everything. With
//! more than one query a timing table follows, with the one-time preparation cost
//! amortized per query.

use gup::session::{Engine, Session};
use gup::sink::{CountOnly, EmbeddingSink, FirstK};
use gup::{GupConfig, PruningFeatures, SearchLimits, SearchStats};
use gup_graph::deadline::Stopwatch;
use gup_graph::io::load_graph;
use gup_graph::VertexId;
use std::process::ExitCode;
use std::time::Duration;

/// How much of the output the search must produce — each mode maps to a different
/// [`EmbeddingSink`], so cheaper modes do strictly less work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OutputMode {
    /// Summary line only (embeddings are counted, not kept).
    Summary,
    /// `--count-only`: counting sink, zero materialization.
    CountOnly,
    /// `--first-k <k>`: stop after the first `k` embeddings and print them.
    FirstK(u64),
    /// `--print-embeddings`: collect and print everything.
    PrintAll,
}

#[derive(Clone, Debug)]
struct Options {
    data: String,
    index: Option<String>,
    save_index: Option<String>,
    queries: Vec<String>,
    method: String,
    limit: Option<u64>,
    timeout: Option<Duration>,
    threads: usize,
    output: OutputMode,
}

fn usage() -> &'static str {
    "usage: gup-match (--data <file> | --index <file>) --query <file> [--query <file> ...]\n\
     options:\n\
       --method <gup|gup-noguards|daf|gql|ri|join>   matcher to run (default: gup)\n\
       --index <file>         load a saved prepared index instead of a --data graph\n\
       --save-index <file>    persist the prepared index after building it (with no\n\
                              --query this prepares, saves, and exits)\n\
       --queries <manifest>   newline-separated file of query paths (batch mode)\n\
       --limit <n>            stop after n embeddings (default: 100000; 0 = unlimited)\n\
       --timeout-ms <n>       per-query time limit in milliseconds, must be positive\n\
                              (default: none)\n\
       --threads <n>          worker threads for the GuP methods (default: 1)\n\
       --count-only           count embeddings without materializing any\n\
       --first-k <k>          stop after the first k embeddings and print them\n\
       --print-embeddings     print every embedding\n\
       --help                 show this message"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        data: String::new(),
        index: None,
        save_index: None,
        queries: Vec::new(),
        method: "gup".to_string(),
        limit: Some(100_000),
        timeout: None,
        threads: 1,
        output: OutputMode::Summary,
    };
    let mut modes_given = 0u32;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--data" => {
                i += 1;
                opts.data = args.get(i).cloned().ok_or("--data needs a path")?;
            }
            "--index" => {
                i += 1;
                opts.index = Some(args.get(i).cloned().ok_or("--index needs a path")?);
            }
            "--save-index" => {
                i += 1;
                opts.save_index = Some(args.get(i).cloned().ok_or("--save-index needs a path")?);
            }
            "--query" => {
                i += 1;
                opts.queries
                    .push(args.get(i).cloned().ok_or("--query needs a path")?);
            }
            "--queries" => {
                i += 1;
                let manifest = args.get(i).cloned().ok_or("--queries needs a path")?;
                let text = std::fs::read_to_string(&manifest)
                    .map_err(|e| format!("cannot read query manifest {manifest}: {e}"))?;
                for line in text.lines() {
                    let line = line.trim();
                    if !line.is_empty() && !line.starts_with('#') {
                        opts.queries.push(line.to_string());
                    }
                }
            }
            "--method" => {
                i += 1;
                opts.method = args.get(i).cloned().ok_or("--method needs a value")?;
            }
            "--limit" => {
                i += 1;
                let n: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--limit needs an integer")?;
                opts.limit = if n == 0 { None } else { Some(n) };
            }
            "--timeout-ms" => {
                i += 1;
                let n: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--timeout-ms needs an integer")?;
                if n == 0 {
                    return Err(
                        "--timeout-ms must be positive (omit it for no time limit)".to_string()
                    );
                }
                opts.timeout = Some(Duration::from_millis(n));
            }
            "--threads" => {
                i += 1;
                opts.threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--threads needs an integer")?;
            }
            "--print-embeddings" => {
                opts.output = OutputMode::PrintAll;
                modes_given += 1;
            }
            "--count-only" => {
                opts.output = OutputMode::CountOnly;
                modes_given += 1;
            }
            "--first-k" => {
                i += 1;
                let k: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--first-k needs an integer")?;
                opts.output = OutputMode::FirstK(k);
                modes_given += 1;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if modes_given > 1 {
        return Err(
            "--count-only, --first-k, and --print-embeddings are mutually exclusive".to_string(),
        );
    }
    match (&opts.index, opts.data.is_empty()) {
        (Some(_), false) => {
            return Err("--data and --index are mutually exclusive (pick one source)".to_string())
        }
        (None, true) => return Err("missing --data (or --index)".to_string()),
        _ => {}
    }
    if opts.save_index.is_some() && opts.index.is_some() {
        return Err(
            "--save-index requires --data (an index loaded with --index is already on disk)"
                .to_string(),
        );
    }
    // `--save-index` alone is a valid prepare-only invocation: build, persist, exit.
    if opts.queries.is_empty() && opts.save_index.is_none() {
        return Err("missing --query (or a non-empty --queries manifest)".to_string());
    }
    Ok(opts)
}

fn parse_method(method: &str) -> Result<(Engine, PruningFeatures), String> {
    match method {
        "gup" => Ok((Engine::Gup, PruningFeatures::ALL)),
        "gup-noguards" => Ok((Engine::Gup, PruningFeatures::NONE)),
        "daf" => Ok((Engine::Daf, PruningFeatures::ALL)),
        "gql" => Ok((Engine::Gql, PruningFeatures::ALL)),
        "ri" => Ok((Engine::Ri, PruningFeatures::ALL)),
        "join" => Ok((Engine::Join, PruningFeatures::ALL)),
        other => Err(format!(
            "unknown method '{other}' (expected gup, gup-noguards, daf, gql, ri, join)"
        )),
    }
}

fn print_embeddings(embeddings: &[Vec<VertexId>]) {
    for emb in embeddings {
        let cells: Vec<String> = emb.iter().map(|v| v.to_string()).collect();
        println!("embedding\t{}", cells.join("\t"));
    }
}

/// Maps an output mode to its sink, runs the engine-specific `run` closure through
/// it, prints whatever the mode retains, and hands back the engine's result record.
/// One implementation for every matcher family — each mode makes the search do
/// strictly as much work as the output demands.
fn run_with_output<R>(output: OutputMode, run: impl FnOnce(&mut dyn EmbeddingSink) -> R) -> R {
    match output {
        OutputMode::Summary | OutputMode::CountOnly => run(&mut CountOnly::new()),
        OutputMode::FirstK(k) => {
            let mut sink = FirstK::new(k);
            let result = run(&mut sink);
            print_embeddings(sink.embeddings());
            result
        }
        OutputMode::PrintAll => {
            let mut sink = gup::sink::CollectAll::new();
            let result = run(&mut sink);
            print_embeddings(sink.embeddings());
            result
        }
    }
}

/// Renders the per-query summary line in the per-method-family historic shape.
fn summary_line(engine: Engine, stats: &SearchStats, threads: usize, elapsed: Duration) -> String {
    let early = if stats.terminated_early() {
        " (terminated early)"
    } else {
        ""
    };
    match engine {
        Engine::Gup => {
            let parallel_info = if threads > 1 {
                format!(
                    " tasks={} splits={} steals={}",
                    stats.tasks_executed, stats.frames_split, stats.tasks_stolen
                )
            } else {
                String::new()
            };
            format!(
                "embeddings={} recursions={} futile={} backjumps={} pruned_by_guards={}{} elapsed={:?}{}",
                stats.embeddings,
                stats.recursions,
                stats.futile_recursions,
                stats.backjumps,
                stats.pruned_by_reservation + stats.pruned_by_nogood_vertex,
                parallel_info,
                elapsed,
                early
            )
        }
        Engine::Join => format!(
            "embeddings={} intermediate_results={} elapsed={:?}{}",
            stats.embeddings, stats.recursions, elapsed, early
        ),
        _ => format!(
            "embeddings={} recursions={} futile={} elapsed={:?}{}",
            stats.embeddings, stats.recursions, stats.futile_recursions, elapsed, early
        ),
    }
}

/// One row of the batch timing table.
struct TimingRow {
    path: String,
    embeddings: u64,
    elapsed: Duration,
}

fn run_query(
    session: &Session,
    query: &gup_graph::Graph,
    engine: Engine,
    features: PruningFeatures,
    opts: &Options,
) -> Result<(String, SearchStats, Duration), String> {
    let watch = Stopwatch::started();
    let config = GupConfig {
        features,
        limits: SearchLimits {
            max_embeddings: opts.limit,
            time_limit: opts.timeout,
            ..SearchLimits::UNLIMITED
        },
        ..GupConfig::default()
    };
    let stats = run_with_output(opts.output, |sink| {
        session
            .query(query)
            .method(engine)
            .config(config)
            .threads(opts.threads)
            .run_with_sink(sink)
    })
    .map_err(|e| e.to_string())?;
    let elapsed = watch.elapsed();
    let line = summary_line(engine, &stats, opts.threads, elapsed);
    Ok((line, stats, elapsed))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{}", usage());
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };
    let (engine, features) = match parse_method(&opts.method) {
        Ok(m) => m,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::from(2);
        }
    };
    // Prepare once (or load a persisted index): every query below (whatever the
    // method) runs against this session's shared index; batch runs amortize this
    // cost, and `--index` warm starts skip it entirely.
    let (session, source_verb) = if let Some(path) = &opts.index {
        match gup_graph::load_index(path) {
            Ok(prepared) => (
                Session::from_prepared(std::sync::Arc::new(prepared)),
                "loaded index in",
            ),
            Err(e) => {
                eprintln!("error: cannot load index {path}: {e}");
                return ExitCode::from(1);
            }
        }
    } else {
        match load_graph(&opts.data) {
            Ok(g) => (Session::new(g), "prepared in"),
            Err(e) => {
                eprintln!("error: cannot load data graph {}: {e}", opts.data);
                return ExitCode::from(1);
            }
        }
    };
    eprintln!(
        "data graph: {} vertices, {} edges, {} labels; {source_verb} {:?} ({} index bytes)",
        session.data().vertex_count(),
        session.data().edge_count(),
        session.data().label_count(),
        session.prep_time(),
        session.prepared().index_bytes()
    );
    if let Some(path) = &opts.save_index {
        let watch = Stopwatch::started();
        if let Err(e) = gup_graph::save_index(session.prepared(), path) {
            eprintln!("error: cannot save index {path}: {e}");
            return ExitCode::from(1);
        }
        eprintln!("saved index to {path} in {:?}", watch.elapsed());
    }
    let mut failures = 0;
    let mut rows: Vec<TimingRow> = Vec::new();
    for path in &opts.queries {
        match load_graph(path) {
            Ok(query) => match run_query(&session, &query, engine, features, &opts) {
                Ok((line, stats, elapsed)) => {
                    println!("{path}\tmethod={}\t{line}", opts.method);
                    rows.push(TimingRow {
                        path: path.clone(),
                        embeddings: stats.embeddings,
                        elapsed,
                    });
                }
                Err(e) => {
                    eprintln!("error: query {path}: {e}");
                    failures += 1;
                }
            },
            Err(e) => {
                eprintln!("error: cannot load query {path}: {e}");
                failures += 1;
            }
        }
    }
    if rows.len() > 1 {
        let prep = session.prep_time();
        let amortized = prep / rows.len() as u32;
        println!(
            "batch: {} queries, prep {:?} once ({:?} amortized per query, {} index bytes)",
            rows.len(),
            prep,
            amortized,
            session.prepared().index_bytes()
        );
        println!("{:<40} {:>12} {:>14}", "query", "matches", "elapsed");
        for row in &rows {
            println!(
                "{:<40} {:>12} {:>14?}",
                row.path, row.embeddings, row.elapsed
            );
        }
    }
    if failures == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
