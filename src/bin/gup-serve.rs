//! `gup-serve` — long-lived subgraph-match server.
//!
//! Loads a data graph in the community `t/v/e` text format, prepares it once,
//! and serves queries over a line-delimited TCP protocol (see the `gup-serve`
//! crate docs for the wire grammar). The prepared index is shared by every
//! query; `reload` swaps in a new data graph without dropping in-flight work.
//!
//! ```text
//! gup-serve --data data.graph
//! gup-serve --data data.graph --listen 127.0.0.1:7878 --workers 8 --queue 32
//! gup-serve --data data.graph --timeout-ms 60000       # default per-request budget
//! ```
//!
//! On startup the bound address is printed to stdout as `listening on <addr>`
//! (bind port 0 for an ephemeral port and read it from there).

use gup::session::Session;
use gup_graph::io::load_graph;
use gup_serve::{Server, ServerConfig};
use std::io::Write;
use std::process::ExitCode;
use std::time::Duration;

#[derive(Clone, Debug)]
struct Options {
    data: String,
    listen: String,
    config: ServerConfig,
}

fn usage() -> &'static str {
    "usage: gup-serve --data <file> [options]\n\
     options:\n\
       --listen <addr>     address to bind (default: 127.0.0.1:7878; port 0 = ephemeral)\n\
       --workers <n>       search worker threads (default: 4)\n\
       --queue <n>         waiting-job capacity before requests get 'busy' (default: 16)\n\
       --timeout-ms <n>    default per-request time budget in milliseconds, must be\n\
                           positive (default: none; requests may set their own)\n\
       --threads <n>       default GuP threads per query (default: 1)\n\
       --cache <n>         result-cache capacity in entries (default: 1024; 0 disables)\n\
       --help              show this message"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        data: String::new(),
        listen: "127.0.0.1:7878".to_string(),
        config: ServerConfig::default(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--data" => {
                i += 1;
                opts.data = args.get(i).cloned().ok_or("--data needs a path")?;
            }
            "--listen" => {
                i += 1;
                opts.listen = args.get(i).cloned().ok_or("--listen needs an address")?;
            }
            "--workers" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--workers needs an integer")?;
                if n == 0 {
                    return Err("--workers must be positive".to_string());
                }
                opts.config.workers = n;
            }
            "--queue" => {
                i += 1;
                opts.config.queue_capacity = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--queue needs an integer")?;
            }
            "--timeout-ms" => {
                i += 1;
                let n: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--timeout-ms needs an integer")?;
                if n == 0 {
                    return Err(
                        "--timeout-ms must be positive (omit it for no default budget)".to_string(),
                    );
                }
                opts.config.default_timeout = Some(Duration::from_millis(n));
            }
            "--threads" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--threads needs an integer")?;
                if n == 0 {
                    return Err("--threads must be positive".to_string());
                }
                opts.config.query_threads = n;
            }
            "--cache" => {
                i += 1;
                opts.config.result_cache = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .ok_or("--cache needs an integer")?;
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if opts.data.is_empty() {
        return Err("missing --data".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!("{}", usage());
            return if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };
    let data = match load_graph(&opts.data) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: cannot load data graph {}: {e}", opts.data);
            return ExitCode::from(1);
        }
    };
    let session = Session::new(data);
    eprintln!(
        "data graph: {} vertices, {} edges, {} labels; prepared in {:?} ({} index bytes)",
        session.data().vertex_count(),
        session.data().edge_count(),
        session.data().label_count(),
        session.prep_time(),
        session.prepared().index_bytes()
    );
    let server = match Server::bind(opts.listen.as_str(), opts.config, session) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", opts.listen);
            return ExitCode::from(1);
        }
    };
    // Tests and scripts read the bound address from this line (port 0 binds).
    println!("listening on {}", server.local_addr());
    let _ = std::io::stdout().flush();
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: server failed: {e}");
            ExitCode::from(1)
        }
    }
}
